package core

import (
	"testing"

	"bsisa/internal/compile"
	"bsisa/internal/isa"
	"bsisa/internal/testgen"
)

// checkFiveRules asserts the paper's §4.2 termination rules as structural
// invariants of an enlarged program.
func checkFiveRules(t *testing.T, p *isa.Program, params Params) {
	t.Helper()
	params = params.withDefaults()
	for _, b := range p.Blocks {
		if b == nil {
			continue
		}
		// Rule 1: block size <= issue width. Pre-enlargement codegen splits
		// at 16, so MaxOps below 16 cannot be asserted against pre-split
		// blocks; assert against the larger of the two.
		cap16 := params.MaxOps
		if cap16 < compile.DefaultMaxBlockOps {
			cap16 = compile.DefaultMaxBlockOps
		}
		if len(b.Ops) > cap16 {
			t.Errorf("rule 1 violated: B%d has %d ops (cap %d)", b.ID, len(b.Ops), cap16)
		}
		// Rule 2: fault and successor bounds.
		if b.NumFaults() > params.MaxFaults {
			t.Errorf("rule 2 violated: B%d has %d faults", b.ID, b.NumFaults())
		}
		if len(b.Succs) > params.MaxSuccs {
			t.Errorf("rule 2 violated: B%d has %d successors", b.ID, len(b.Succs))
		}
		// Rule 3: blocks ending in call/return keep single/no successors
		// (never merged across those edges, never forked into their
		// continuations).
		if term := b.Terminator(); term != nil {
			switch term.Opcode {
			case isa.CALL:
				if len(b.Succs) != 1 {
					t.Errorf("rule 3 violated: call block B%d has %d successors", b.ID, len(b.Succs))
				}
			case isa.RET:
				if len(b.Succs) != 0 {
					t.Errorf("rule 3 violated: ret block B%d has successors", b.ID)
				}
			}
		}
		// Rule 5: library blocks contain no faults (never combined).
		if b.Library && b.NumFaults() > 0 {
			t.Errorf("rule 5 violated: library block B%d has faults", b.ID)
		}
		// Fault targets exist and belong to the same function.
		for i := range b.Ops {
			if b.Ops[i].Opcode == isa.FAULT {
				tgt := p.Block(b.Ops[i].Target)
				if tgt == nil {
					t.Errorf("B%d fault targets missing block", b.ID)
				} else if tgt.Func != b.Func {
					t.Errorf("B%d fault crosses functions", b.ID)
				}
			}
		}
	}
	// Rule 3 (fork side): every function entry and call continuation block
	// still exists (never removed by symmetric forking).
	for _, f := range p.Funcs {
		if p.Block(f.Entry) == nil {
			t.Errorf("rule 3 violated: function %s lost its entry", f.Name)
		}
	}
	for _, b := range p.Blocks {
		if b != nil && b.Cont != isa.NoBlock && p.Block(b.Cont) == nil {
			t.Errorf("rule 3 violated: B%d lost its continuation", b.ID)
		}
	}
}

// TestFiveRulesOnRandomPrograms enforces the termination rules across random
// programs and several parameterizations.
func TestFiveRulesOnRandomPrograms(t *testing.T) {
	seeds := 30
	if testing.Short() {
		seeds = 6
	}
	paramSets := []Params{{}, {MaxOps: 8}, {MaxOps: 32}, {MaxFaults: 1}, {MaxFaults: 3, MaxSuccs: 16}}
	for seed := int64(3000); seed < 3000+int64(seeds); seed++ {
		src := testgen.Program(seed)
		params := paramSets[seed%int64(len(paramSets))]
		prog, err := compile.Compile(src, "rules", compile.DefaultOptions(isa.BlockStructured))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if _, err := Enlarge(prog, params); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		checkFiveRules(t, prog, params)
	}
}

// TestRule4NoLoopIterationMerging: for a simple counted loop, no block may
// contain two copies of the loop body (the increment op appears at most once
// per block).
func TestRule4NoLoopIterationMerging(t *testing.T) {
	src := `
func main() {
	var i;
	var s = 0;
	for (i = 0; i < 50; i = i + 1) {
		s = s + 7;
	}
	out(s);
}`
	prog, err := compile.Compile(src, "r4", compile.DefaultOptions(isa.BlockStructured))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Enlarge(prog, Params{MaxOps: 64}); err != nil {
		t.Fatal(err)
	}
	// Count ADDI ..., 7 occurrences per block: the loop body's signature op.
	for _, b := range prog.Blocks {
		if b == nil {
			continue
		}
		n := 0
		for i := range b.Ops {
			if b.Ops[i].Opcode == isa.ADDI && b.Ops[i].Imm == 7 {
				n++
			}
		}
		if n > 1 {
			t.Errorf("rule 4 violated: B%d contains %d copies of the loop body", b.ID, n)
		}
	}
}
