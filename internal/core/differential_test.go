package core

// Differential testing: generate random MiniC programs (a generator
// independent of internal/workload's benchmark profiles) and require that
// the conventional executable, the block-structured executable, and
// enlarged executables under several parameterizations all produce identical
// output and return values. This exercises the full stack — front end,
// optimizer, register allocator, both backends, the enlarger's five rules,
// and the emulator's atomic commit/fault-retry semantics — against itself.

import (
	"fmt"
	"testing"

	"bsisa/internal/compile"
	"bsisa/internal/emu"
	"bsisa/internal/isa"
	"bsisa/internal/testgen"
)

// runOutputs compiles and runs a program, returning its output stream.
func runOutputs(t *testing.T, src, label string, kind isa.Kind, params *Params) []int64 {
	t.Helper()
	prog, err := compile.Compile(src, label, compile.DefaultOptions(kind))
	if err != nil {
		t.Fatalf("%s: compile: %v\nsource:\n%s", label, err, src)
	}
	if params != nil {
		if _, err := Enlarge(prog, *params); err != nil {
			t.Fatalf("%s: enlarge: %v\nsource:\n%s", label, err, src)
		}
	}
	res, err := emu.New(prog, emu.Config{MaxOps: 80_000_000}).Run(nil)
	if err != nil {
		t.Fatalf("%s: run: %v\nsource:\n%s\n%s", label, err, src, isa.Disassemble(prog))
	}
	return append(res.Output, res.ReturnValue)
}

// TestDifferentialRandomPrograms is the cross-ISA differential fuzz test.
func TestDifferentialRandomPrograms(t *testing.T) {
	seeds := 150 // one-off deep runs used 800+
	if testing.Short() {
		seeds = 10
	}
	paramSets := []Params{
		{},                         // paper defaults
		{MaxOps: 8},                // tight blocks
		{MaxOps: 32, MaxFaults: 1}, // wide, single fault
		{MaxFaults: -1},            // merges only
		{MaxOps: 24, MaxFaults: 3}, // beyond-paper budget
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		src := testgen.Program(seed)
		want := runOutputs(t, src, fmt.Sprintf("seed%d/conv", seed), isa.Conventional, nil)
		got := runOutputs(t, src, fmt.Sprintf("seed%d/bsa", seed), isa.BlockStructured, nil)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("seed %d: BSA disagrees with conventional\nconv: %v\nbsa:  %v\nsource:\n%s",
				seed, want, got, src)
		}
		p := paramSets[seed%int64(len(paramSets))]
		got = runOutputs(t, src, fmt.Sprintf("seed%d/enlarged", seed), isa.BlockStructured, &p)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("seed %d: enlarged (%+v) disagrees\nconv:     %v\nenlarged: %v\nsource:\n%s",
				seed, p, want, got, src)
		}
	}
}

// TestDifferentialSuperblockRandomPrograms repeats the differential check
// for the static-prediction (superblock) enlarger, which needs a profile.
func TestDifferentialSuperblockRandomPrograms(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 5
	}
	for seed := int64(100); seed < 100+int64(seeds); seed++ {
		src := testgen.Program(seed)
		want := runOutputs(t, src, "conv", isa.Conventional, nil)

		prog, err := compile.Compile(src, "bsa", compile.DefaultOptions(isa.BlockStructured))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		prof, err := CollectProfile(prog, 80_000_000)
		if err != nil {
			t.Fatalf("seed %d: profile: %v", seed, err)
		}
		if _, err := Enlarge(prog, Params{Static: true, Profile: prof}); err != nil {
			t.Fatalf("seed %d: superblock enlarge: %v\nsource:\n%s", seed, err, src)
		}
		res, err := emu.New(prog, emu.Config{MaxOps: 80_000_000}).Run(nil)
		if err != nil {
			t.Fatalf("seed %d: run: %v\nsource:\n%s", seed, err, src)
		}
		got := append(res.Output, res.ReturnValue)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("seed %d: superblock disagrees\nconv:       %v\nsuperblock: %v\nsource:\n%s",
				seed, want, got, src)
		}
	}
}
