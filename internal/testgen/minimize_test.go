package testgen

import (
	"strings"
	"testing"

	"bsisa/internal/compile"
	"bsisa/internal/isa"
	"bsisa/internal/lang"
)

func TestMinimizeKeepsFailure(t *testing.T) {
	// Failure of interest: the program contains a shift by 63. Minimize
	// must keep a parsable program exhibiting it while dropping the noise.
	var sb strings.Builder
	sb.WriteString("var gdata[16];\nvar gscalar;\n\n")
	sb.WriteString(Program(7))
	src := strings.Replace(sb.String(), "func main() {", "func main() {\n\tgscalar = 1 << 63;", 1)

	fails := func(cand string) bool {
		if _, err := lang.Parse(cand); err != nil {
			return false
		}
		return strings.Contains(cand, "1 << 63")
	}
	if !fails(src) {
		t.Fatal("seed source does not fail")
	}
	min := Minimize(src, fails)
	if !fails(min) {
		t.Fatal("minimized source lost the failure")
	}
	if len(min) >= len(src) {
		t.Fatalf("no shrinkage: %d -> %d bytes", len(src), len(min))
	}
	t.Logf("minimized %d -> %d bytes (%d -> %d lines)", len(src), len(min),
		strings.Count(src, "\n"), strings.Count(min, "\n"))
}

func TestMinimizeCompilableOracle(t *testing.T) {
	// An oracle that requires full compilation: minimization must respect
	// semantic validity, not just syntax.
	src := Program(3)
	fails := func(cand string) bool {
		p, err := compile.Compile(cand, "min", compile.DefaultOptions(isa.BlockStructured))
		return err == nil && p.NumLiveBlocks() > 3
	}
	if !fails(src) {
		t.Skip("seed 3 too small for this oracle")
	}
	min := Minimize(src, fails)
	if !fails(min) {
		t.Fatal("minimized source no longer satisfies the oracle")
	}
	if len(min) > len(src) {
		t.Fatal("minimization grew the program")
	}
}
