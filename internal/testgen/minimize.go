package testgen

import "strings"

// maxMinimizeProbes bounds how many times Minimize may invoke the fails
// callback: each probe re-runs the caller's whole oracle (typically a full
// differential pipeline), so an unbounded ddmin on a large program could run
// for hours.
const maxMinimizeProbes = 3000

// Minimize shrinks a failing MiniC program by line-window delta debugging.
// fails must report whether a candidate source still exhibits the failure
// being chased (it should return true for src itself); candidates that stop
// failing — including ones the deletion made unparsable — are discarded.
// The window starts at half the program and halves down to single lines,
// re-scanning after every successful deletion, so the result is 1-line
// minimal with respect to the final window pass.
func Minimize(src string, fails func(string) bool) string {
	lines := strings.Split(src, "\n")
	probes := 0
	probe := func(cand []string) bool {
		if probes >= maxMinimizeProbes {
			return false
		}
		probes++
		return fails(strings.Join(cand, "\n"))
	}
	for win := (len(lines) + 1) / 2; win >= 1; win /= 2 {
		for i := 0; i+win <= len(lines); {
			cand := make([]string, 0, len(lines)-win)
			cand = append(cand, lines[:i]...)
			cand = append(cand, lines[i+win:]...)
			if probe(cand) {
				lines = cand // window removed; the next window slid into place at i
			} else {
				i++
			}
		}
	}
	return strings.Join(lines, "\n")
}
