// Package testgen generates random, well-formed, terminating MiniC programs
// for differential and property testing. Programs use bounded loops with
// read-only counters, acyclic call graphs (a function calls only
// strictly-lower-numbered functions), no calls inside loops, and bounded
// shift amounts, so every generated program terminates quickly and never
// traps. The generator is deterministic in its seed.
package testgen

import (
	"fmt"
	"math/rand"
	"strings"
)

// progGen builds random but well-formed, terminating MiniC programs.
type progGen struct {
	r       *rand.Rand
	sb      strings.Builder
	nFuncs  int
	varsIdx int
}

func Program(seed int64) string {
	g := &progGen{r: rand.New(rand.NewSource(seed))}
	g.nFuncs = g.r.Intn(5) + 2
	fmt.Fprintf(&g.sb, "var gdata[%d];\nvar gscalar;\n\n", 16+g.r.Intn(48))
	for i := 0; i < g.nFuncs; i++ {
		g.fn(i)
	}
	g.mainFn()
	return g.sb.String()
}

// expr emits a small expression over the in-scope variables.
func (g *progGen) expr(vars []string, depth int) string {
	if depth <= 0 || g.r.Intn(3) == 0 {
		switch g.r.Intn(4) {
		case 0:
			return fmt.Sprint(g.r.Intn(200) - 100)
		case 1:
			return vars[g.r.Intn(len(vars))]
		case 2:
			return fmt.Sprintf("gdata[(%s) & 15]", vars[g.r.Intn(len(vars))])
		default:
			return "gscalar"
		}
	}
	ops := []string{"+", "-", "*", "&", "|", "^", "<", "<=", "==", "!=", ">>", "<<"}
	op := ops[g.r.Intn(len(ops))]
	l := g.expr(vars, depth-1)
	rr := g.expr(vars, depth-1)
	if op == "<<" || op == ">>" {
		rr = fmt.Sprint(g.r.Intn(5) + 1) // bounded shifts
	}
	if op == "*" {
		// Keep magnitudes bounded so arithmetic stays well within int64.
		return fmt.Sprintf("(((%s) & 1023) %s ((%s) & 1023))", l, op, rr)
	}
	return fmt.Sprintf("((%s) %s (%s))", l, op, rr)
}

// cond emits a boolean-ish expression, sometimes short-circuiting.
func (g *progGen) cond(vars []string) string {
	c := g.expr(vars, 1)
	switch g.r.Intn(4) {
	case 0:
		return fmt.Sprintf("(%s) && (%s)", c, g.expr(vars, 1))
	case 1:
		return fmt.Sprintf("(%s) || (%s)", c, g.expr(vars, 1))
	case 2:
		return fmt.Sprintf("!(%s)", c)
	default:
		return c
	}
}

// stmts emits statements. vars are readable; the first nAssign of them are
// also assignable (loop counters are appended after nAssign and stay
// read-only, so loops always terminate).
func (g *progGen) stmts(vars []string, nAssign int, indent string, depth int, inLoop bool) {
	n := g.r.Intn(4) + 1
	for i := 0; i < n; i++ {
		g.stmt(vars, nAssign, indent, depth, inLoop)
	}
}

func (g *progGen) stmt(vars []string, nAssign int, indent string, depth int, inLoop bool) {
	switch k := g.r.Intn(10); {
	case k < 3: // assignment
		fmt.Fprintf(&g.sb, "%s%s = %s;\n", indent, vars[g.r.Intn(nAssign)], g.expr(vars, 2))
	case k == 3: // global store
		fmt.Fprintf(&g.sb, "%sgdata[(%s) & 15] = %s;\n", indent, g.expr(vars, 1), g.expr(vars, 1))
	case k == 4: // out
		fmt.Fprintf(&g.sb, "%sout(%s);\n", indent, g.expr(vars, 1))
	case k == 5 && depth > 0: // if/else
		fmt.Fprintf(&g.sb, "%sif (%s) {\n", indent, g.cond(vars))
		g.stmts(vars, nAssign, indent+"\t", depth-1, inLoop)
		if g.r.Intn(2) == 0 {
			fmt.Fprintf(&g.sb, "%s} else {\n", indent)
			g.stmts(vars, nAssign, indent+"\t", depth-1, inLoop)
		}
		fmt.Fprintf(&g.sb, "%s}\n", indent)
	case k == 6 && depth > 0: // bounded for loop with a fresh variable
		v := fmt.Sprintf("it%d", g.varsIdx)
		g.varsIdx++
		fmt.Fprintf(&g.sb, "%sfor (var %s = 0; %s < %d; %s = %s + 1) {\n",
			indent, v, v, g.r.Intn(6)+2, v, v)
		// No calls inside loops: with acyclic call graphs this bounds total
		// work to a small polynomial of the program size.
		save := g.nFuncs
		g.nFuncs = 0
		g.stmts(append(vars, v), nAssign, indent+"\t", depth-1, true)
		g.nFuncs = save
		fmt.Fprintf(&g.sb, "%s}\n", indent)
	case k == 7 && inLoop: // break/continue
		if g.r.Intn(2) == 0 {
			fmt.Fprintf(&g.sb, "%sif (%s) { break; }\n", indent, g.cond(vars))
		} else {
			fmt.Fprintf(&g.sb, "%sif (%s) { continue; }\n", indent, g.cond(vars))
		}
	case k == 8 && g.nFuncs > 0: // call a lower-numbered function (acyclic, terminates)
		fmt.Fprintf(&g.sb, "%sgscalar = gscalar + f%d(%s, %s);\n",
			indent, g.r.Intn(g.nFuncs), g.expr(vars, 1), g.expr(vars, 1))
	case k == 9 && depth > 0: // switch (dense enough for a jump table sometimes)
		fmt.Fprintf(&g.sb, "%sswitch ((%s) & 7) {\n", indent, g.expr(vars, 1))
		ncases := g.r.Intn(4) + 2
		used := map[int64]bool{}
		for c := 0; c < ncases; c++ {
			v := int64(g.r.Intn(8))
			if used[v] {
				continue
			}
			used[v] = true
			fmt.Fprintf(&g.sb, "%scase %d {\n", indent, v)
			g.stmts(vars, nAssign, indent+"\t", depth-1, inLoop)
			fmt.Fprintf(&g.sb, "%s}\n", indent)
		}
		if g.r.Intn(2) == 0 {
			fmt.Fprintf(&g.sb, "%sdefault {\n", indent)
			g.stmts(vars, nAssign, indent+"\t", depth-1, inLoop)
			fmt.Fprintf(&g.sb, "%s}\n", indent)
		}
		fmt.Fprintf(&g.sb, "%s}\n", indent)
	default:
		fmt.Fprintf(&g.sb, "%s%s = %s + 1;\n", indent, vars[g.r.Intn(nAssign)], vars[g.r.Intn(len(vars))])
	}
}

func (g *progGen) fn(idx int) {
	lib := ""
	if g.r.Intn(5) == 0 {
		lib = "library "
	}
	fmt.Fprintf(&g.sb, "%sfunc f%d(a, b) {\n", lib, idx)
	vars := []string{"a", "b"}
	// Locals.
	for i := 0; i < g.r.Intn(3)+1; i++ {
		v := fmt.Sprintf("l%d", i)
		fmt.Fprintf(&g.sb, "\tvar %s = %s;\n", v, g.expr(vars, 1))
		vars = append(vars, v)
	}
	save := g.nFuncs
	g.nFuncs = idx // functions may only call strictly lower-numbered ones
	g.stmts(vars, len(vars), "\t", 2, false)
	g.nFuncs = save
	fmt.Fprintf(&g.sb, "\treturn %s;\n}\n\n", g.expr(vars, 2))
}

func (g *progGen) mainFn() {
	fmt.Fprintf(&g.sb, "func main() {\n")
	vars := []string{"x", "y"}
	fmt.Fprintf(&g.sb, "\tvar x = %d;\n\tvar y = %d;\n", g.r.Intn(100), g.r.Intn(100))
	save := g.nFuncs
	g.stmts(vars, len(vars), "\t", 3, false)
	g.nFuncs = save
	fmt.Fprintf(&g.sb, "\tout(x); out(y); out(gscalar);\n}\n")
}
