package testgen

import (
	"strings"
	"testing"

	"bsisa/internal/lang"
)

func TestProgramsDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		if Program(seed) != Program(seed) {
			t.Fatalf("seed %d not deterministic", seed)
		}
	}
	if Program(1) == Program(2) {
		t.Error("different seeds should differ")
	}
}

func TestProgramsParseAndCheck(t *testing.T) {
	for seed := int64(1); seed <= 100; seed++ {
		src := Program(seed)
		f, err := lang.Parse(src)
		if err != nil {
			t.Fatalf("seed %d does not parse: %v\n%s", seed, err, src)
		}
		if _, err := lang.Check(f); err != nil {
			t.Fatalf("seed %d does not check: %v\n%s", seed, err, src)
		}
		if !strings.Contains(src, "func main()") {
			t.Fatalf("seed %d has no main", seed)
		}
	}
}

func TestProgramsExerciseLanguageFeatures(t *testing.T) {
	// Across a seed range, the generator must emit every major construct.
	var all strings.Builder
	for seed := int64(1); seed <= 60; seed++ {
		all.WriteString(Program(seed))
	}
	src := all.String()
	for _, want := range []string{
		"for (", "if (", "} else {", "switch (", "case ", "default {",
		"break;", "continue;", "library func", "gdata[", "out(", "&&", "||",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated corpus never uses %q", want)
		}
	}
}
