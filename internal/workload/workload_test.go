package workload

import (
	"strings"
	"testing"

	"bsisa/internal/compile"
	"bsisa/internal/core"
	"bsisa/internal/emu"
	"bsisa/internal/isa"
)

// mustSource generates a profile's source, failing the test on a rejected
// profile.
func mustSource(t *testing.T, p Profile) string {
	t.Helper()
	src, err := Source(p)
	if err != nil {
		t.Fatalf("Source(%s): %v", p.Name, err)
	}
	return src
}

func TestProfilesCoverTable2(t *testing.T) {
	want := []string{"compress", "gcc", "go", "ijpeg", "li", "m88ksim", "perl", "vortex"}
	ps := Profiles(1)
	if len(ps) != len(want) {
		t.Fatalf("got %d profiles, want %d", len(ps), len(want))
	}
	for i, name := range want {
		if ps[i].Name != name {
			t.Errorf("profile %d = %s, want %s", i, ps[i].Name, name)
		}
		if ps[i].DataWords&(ps[i].DataWords-1) != 0 {
			t.Errorf("%s: DataWords %d not a power of two", name, ps[i].DataWords)
		}
		if ps[i].Seed == 0 {
			t.Errorf("%s: zero seed", name)
		}
	}
}

func TestSourceDeterministic(t *testing.T) {
	p, _ := ProfileByName("gcc", 0.1)
	a, b := mustSource(t, p), mustSource(t, p)
	if a != b {
		t.Error("generation is not deterministic")
	}
}

func TestScaleAffectsOnlyDynamicWork(t *testing.T) {
	small, _ := ProfileByName("li", 0.05)
	big, _ := ProfileByName("li", 1.0)
	if small.Funcs != big.Funcs || small.CondsPerFunc != big.CondsPerFunc {
		t.Error("scale changed static shape")
	}
	if small.OuterIters >= big.OuterIters {
		t.Error("scale did not change dynamic work")
	}
	// Same static source modulo the iteration bound.
	srcSmall, srcBig := mustSource(t, small), mustSource(t, big)
	if len(srcSmall) == 0 || len(srcBig) == 0 {
		t.Fatal("empty source")
	}
	if !strings.Contains(srcSmall, "func work_0") {
		t.Error("missing workers")
	}
}

// TestAllProfilesCompileAndAgree is the workhorse: every profile compiles
// for both ISAs, the block-structured version enlarges, and all three
// executables produce identical output.
func TestAllProfilesCompileAndAgree(t *testing.T) {
	for _, p := range Profiles(0.02) {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			src := mustSource(t, p)
			conv, err := compile.Compile(src, p.Name, compile.DefaultOptions(isa.Conventional))
			if err != nil {
				t.Fatalf("compile conventional: %v", err)
			}
			bsa, err := compile.Compile(src, p.Name, compile.DefaultOptions(isa.BlockStructured))
			if err != nil {
				t.Fatalf("compile bsa: %v", err)
			}
			if _, err := core.Enlarge(bsa, core.Params{}); err != nil {
				t.Fatalf("enlarge: %v", err)
			}

			rc, err := emu.New(conv, emu.Config{MaxOps: 500_000_000}).Run(nil)
			if err != nil {
				t.Fatalf("run conventional: %v", err)
			}
			rb, err := emu.New(bsa, emu.Config{MaxOps: 500_000_000}).Run(nil)
			if err != nil {
				t.Fatalf("run bsa: %v", err)
			}
			if len(rc.Output) != len(rb.Output) {
				t.Fatalf("output mismatch: %v vs %v", rc.Output, rb.Output)
			}
			for i := range rc.Output {
				if rc.Output[i] != rb.Output[i] {
					t.Fatalf("output[%d]: %d vs %d", i, rc.Output[i], rb.Output[i])
				}
			}
			if rc.Stats.Ops == 0 {
				t.Error("no dynamic work")
			}
		})
	}
}

// TestBlockSizeRegime checks the central workload property: conventional
// basic blocks must land in the SPECint 4–6 op range on average, so that
// enlargement has the headroom the paper describes.
func TestBlockSizeRegime(t *testing.T) {
	for _, name := range []string{"gcc", "li", "vortex"} {
		p, _ := ProfileByName(name, 0.02)
		conv, err := compile.Compile(mustSource(t, p), p.Name, compile.DefaultOptions(isa.Conventional))
		if err != nil {
			t.Fatal(err)
		}
		// Measure steady-state code only: at tiny test scales the one-time
		// data-initialization loop dominates dynamic ops (at the reference
		// scale it is a few percent), so exclude it here.
		initFn := conv.FuncByName("initdata")
		var ops, blocks int64
		_, err = emu.New(conv, emu.Config{}).Run(func(ev *emu.BlockEvent) error {
			if ev.Block.Func != initFn.ID {
				ops += int64(len(ev.Block.Ops))
				blocks++
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		avg := float64(ops) / float64(blocks)
		if avg < 3 || avg > 9 {
			t.Errorf("%s: conventional dynamic block size %.2f outside the SPECint regime", name, avg)
		}
	}
}

// TestBranchBiasRealized checks that profiles' bias knobs show up in the
// dynamic taken rates.
func TestBranchBiasRealized(t *testing.T) {
	biased, _ := ProfileByName("vortex", 0.02) // 93% bias
	unbiased, _ := ProfileByName("go", 0.02)   // 52% bias
	rate := func(p Profile) float64 {
		conv, err := compile.Compile(mustSource(t, p), p.Name, compile.DefaultOptions(isa.Conventional))
		if err != nil {
			t.Fatal(err)
		}
		prof, err := core.CollectProfile(conv, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Unweighted per-site bias: loop back-edges are near-always taken
		// in any program, so the distinguishing signal is how biased the
		// *conditional sites* are on average.
		var sum float64
		var n int
		for _, bp := range prof {
			if bp.Taken+bp.NotTaken < 10 {
				continue
			}
			sum += bp.Bias()
			n++
		}
		return sum / float64(n)
	}
	rb, ru := rate(biased), rate(unbiased)
	if rb <= ru {
		t.Errorf("vortex per-branch bias %.3f should exceed go %.3f", rb, ru)
	}
}

// TestStaticFootprints checks the code-size ordering that drives Figures 6
// and 7: gcc and go must be the big-code profiles, compress among the small.
func TestStaticFootprints(t *testing.T) {
	size := func(name string) uint32 {
		p, _ := ProfileByName(name, 0.02)
		conv, err := compile.Compile(mustSource(t, p), p.Name, compile.DefaultOptions(isa.Conventional))
		if err != nil {
			t.Fatal(err)
		}
		return conv.CodeBytes()
	}
	gcc, goSz, compress, li := size("gcc"), size("go"), size("compress"), size("li")
	if gcc <= compress || goSz <= compress {
		t.Errorf("big-code profiles not bigger: gcc=%d go=%d compress=%d", gcc, goSz, compress)
	}
	if gcc <= li {
		t.Errorf("gcc (%d) should exceed li (%d)", gcc, li)
	}
	t.Logf("footprints: gcc=%dB go=%dB li=%dB compress=%dB", gcc, goSz, li, compress)
}

// TestProfileValidationRejectsBadProfiles covers the Validate guard: the
// generator masks data indices with DataWords-1, so a non-power-of-two
// DataWords must be rejected rather than silently corrupting indices.
func TestProfileValidationRejectsBadProfiles(t *testing.T) {
	good, _ := ProfileByName("compress", 0.02)
	if err := good.Validate(); err != nil {
		t.Fatalf("reference profile rejected: %v", err)
	}
	bad := []func(p *Profile){
		func(p *Profile) { p.DataWords = 1000 }, // not a power of two
		func(p *Profile) { p.DataWords = 0 },
		func(p *Profile) { p.DataWords = -2048 },
		func(p *Profile) { p.Funcs = 0 },
		func(p *Profile) { p.OuterIters = 0 },
		func(p *Profile) { p.BiasPercent = 101 },
		func(p *Profile) { p.PatternedFrac1000 = -1 },
		func(p *Profile) { p.InnerIters = -1 },
	}
	for i, mutate := range bad {
		p := good
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: bad profile %+v passed validation", i, p)
		}
		if _, err := Source(p); err == nil {
			t.Errorf("case %d: Source accepted an invalid profile", i)
		}
	}
}
