package workload

import (
	"fmt"
	"math/rand"
	"strings"
)

// Source generates the MiniC program for a profile. Generation is fully
// deterministic in the profile (including its Seed). Invalid profiles are
// rejected: the generator indexes the data array through a power-of-two mask
// (DataWords-1), so a non-power-of-two DataWords would silently corrupt every
// data index rather than fail.
func Source(p Profile) (string, error) {
	if err := p.Validate(); err != nil {
		return "", err
	}
	g := &gen{p: p, rng: rand.New(rand.NewSource(p.Seed))}
	return g.program(), nil
}

type gen struct {
	p   Profile
	rng *rand.Rand
	sb  strings.Builder
}

func (g *gen) emitf(format string, args ...any) {
	fmt.Fprintf(&g.sb, format, args...)
}

// mask is the power-of-two data index mask.
func (g *gen) mask() int { return g.p.DataWords - 1 }

func (g *gen) program() string {
	p := g.p
	g.emitf("// synthetic SPECint95 profile %q (input %s), seed %d\n", p.Name, p.Input, p.Seed)
	g.emitf("var data[%d];\nvar seed;\nvar tick;\n\n", p.DataWords)

	for i := 0; i < p.LibFuncs; i++ {
		g.libFunc(i)
	}
	// Small non-library leaf helpers (the static-inline functions of real C
	// code): frequent call targets that stop block enlargement at rule-3
	// boundaries unless an inlining pass removes them.
	for i := 0; i < 3; i++ {
		g.helperFunc(i)
	}
	g.initData()
	for k := 0; k < p.Funcs; k++ {
		g.worker(k)
	}
	g.dispatch(0, p.Funcs)
	g.mainFunc()
	return g.sb.String()
}

// libFunc emits a small library helper (rule-5 code the enlarger must leave
// alone).
func (g *gen) libFunc(i int) {
	c1 := g.rng.Intn(30000) + 1
	c2 := g.rng.Intn(6) + 1
	g.emitf("library func lib_%d(x) {\n", i)
	g.emitf("\tx = x ^ %d;\n", c1)
	g.emitf("\tx = x + (x >> %d);\n", c2)
	g.emitf("\treturn x & 65535;\n}\n\n")
}

// initData fills the data array with an LCG stream (the source of
// data-dependent branch outcomes). The body is kept branchy and register
// resident so initialization code looks like ordinary integer code rather
// than one fat straight-line block.
func (g *gen) initData() {
	q := g.p.DataWords / 4
	g.emitf("func initdata() {\n")
	g.emitf("\tvar i;\n")
	for k := 1; k <= 4; k++ {
		g.emitf("\tvar s%d = %d;\n", k, g.rng.Intn(100000)+7)
	}
	// Four interleaved LCG streams: initialization is cheap (about five
	// operations per data word) and has parallel dependence chains, so it
	// neither dominates dynamic op counts nor serializes the pipeline.
	g.emitf("\tfor (i = 0; i < %d; i = i + 1) {\n", q)
	adds := []int{11, 17, 29, 37}
	for k := 1; k <= 4; k++ {
		g.emitf("\t\ts%d = (s%d * 48271 + %d) & 2147483647;\n", k, k, adds[k-1])
	}
	for k := 1; k <= 4; k++ {
		g.emitf("\t\tdata[i + %d] = s%d & 65535;\n", (k-1)*q, k)
	}
	g.emitf("\t}\n")
	g.emitf("\tseed = s1;\n}\n\n")
}

// armStmt emits one simple statement for a conditional arm. Statements are
// deliberately small (1–2 operations) so conventional basic blocks land in
// the SPECint 4–5 op range, and they spread work across the independent
// accumulators a and b (with occasional serial v-chases) so the code has
// instruction-level parallelism downstream of fetch — the machine must be
// fetch-bound, as in the paper, not dependence-bound.
func (g *gen) armStmt() string {
	acc := [3]string{"a", "b", "c2"}[g.rng.Intn(3)]
	switch g.rng.Intn(10) {
	case 0:
		return fmt.Sprintf("%s = %s + ((v & %d) + (x >> %d));", acc, acc, g.rng.Intn(63)+1, g.rng.Intn(3)+1)
	case 1:
		return fmt.Sprintf("%s = %s ^ %d;", acc, acc, g.rng.Intn(30000)+1)
	case 2:
		return fmt.Sprintf("%s = %s - ((x ^ %d) & 255);", acc, acc, g.rng.Intn(30000)+1)
	case 3:
		return fmt.Sprintf("data[(x + %d) & %d] = v;", g.rng.Intn(1000), g.mask())
	case 4:
		// Independent load: the address depends only on the block-entry x.
		return fmt.Sprintf("%s = %s + data[(x + %d) & %d];", acc, acc, g.rng.Intn(1000), g.mask())
	case 5:
		// Helper call: frequent calls are what limits block enlargement in
		// the paper (§5 attributes the unused fetch bandwidth to procedure
		// calls and returns). Half the sites call library code (never
		// inlinable), half call ordinary leaf helpers (inlinable).
		if g.p.LibFuncs > 0 && g.rng.Intn(2) == 0 {
			return fmt.Sprintf("%s = %s + lib_%d(v & 1023);", acc, acc, g.rng.Intn(g.p.LibFuncs))
		}
		return fmt.Sprintf("%s = %s + hlp_%d(v, x);", acc, acc, g.rng.Intn(3))
	case 6:
		return fmt.Sprintf("%s = (%s * %d) & 1048575;", acc, acc, g.rng.Intn(5)+3)
	case 7:
		// Serial pointer-chase flavor, kept rare: rewrites v itself.
		return fmt.Sprintf("v = data[(v + %d) & %d];", g.rng.Intn(1000), g.mask())
	default:
		return fmt.Sprintf("%s = %s + v;", acc, acc)
	}
}

// helperFunc emits a small non-library leaf function.
func (g *gen) helperFunc(i int) {
	c1 := g.rng.Intn(1000) + 1
	sh := g.rng.Intn(4) + 1
	g.emitf("func hlp_%d(x, y) {\n", i)
	g.emitf("\treturn ((x + %d) ^ (y >> %d)) & 65535;\n}\n\n", c1, sh)
}

// condition emits a branch condition. Patterned conditions test the global
// tick counter (history-predictable); data conditions compare masked LCG
// data against the profile's bias threshold.
func (g *gen) condition(k, c int) string {
	if g.rng.Intn(1000) < g.p.PatternedFrac1000 {
		// Highly predictable site: taken on all but one of every 8/16/32
		// iterations. A two-bit counter nails these regardless of history
		// pollution from neighboring data-dependent branches.
		mask := []int{7, 15, 31}[g.rng.Intn(3)]
		return fmt.Sprintf("(tk & %d) != 0", mask)
	}
	thresh := g.p.BiasPercent * 128 / 100
	sh := g.rng.Intn(8)
	return fmt.Sprintf("((v >> %d) & 127) < %d", sh, thresh)
}

// worker emits one worker function.
func (g *gen) worker(k int) {
	p := g.p
	g.emitf("func work_%d(x, d) {\n", k)
	g.emitf("\tx = x & 1048575;\n")
	g.emitf("\tvar v = data[(x + %d) & %d];\n", k*37+1, g.mask())
	g.emitf("\tvar tk = tick;\n")
	g.emitf("\tvar a = x >> 1;\n\tvar b = v;\n\tvar c2 = x ^ %d;\n", k*11+5)

	for c := 0; c < p.CondsPerFunc; c++ {
		g.emitf("\tif (%s) {\n", g.condition(k, c))
		for s := 0; s < p.StmtsPerArm; s++ {
			g.emitf("\t\t%s\n", g.armStmt())
		}
		g.emitf("\t} else {\n")
		for s := 0; s < p.StmtsPerArm; s++ {
			g.emitf("\t\t%s\n", g.armStmt())
		}
		g.emitf("\t}\n")
	}

	if p.InnerIters > 0 {
		// Accumulate independent loads off the loop counter: the counter
		// and accumulator advance in parallel chains, loads fan out. The
		// patterned branch keeps basic blocks small, as in real loop code.
		g.emitf("\tvar j;\n")
		g.emitf("\tfor (j = 0; j < %d; j = j + 1) {\n", p.InnerIters)
		g.emitf("\t\tif ((j & 3) != 0) {\n")
		g.emitf("\t\t\tb = b + data[(x + j) & %d];\n", g.mask())
		g.emitf("\t\t} else {\n")
		g.emitf("\t\t\ta = a ^ (x + j);\n")
		g.emitf("\t\t}\n")
		g.emitf("\t}\n")
	}

	// Fold the accumulators into x before any call, so they never live
	// across a call site (they stay in caller-saved registers and cost no
	// prologue saves).
	g.emitf("\tx = ((x + a) ^ ((b + c2) & 65535)) & 1048575;\n")

	// Callees are neighbors: call trees stay within the current phase's
	// neighborhood, giving the instantaneous working set the locality real
	// programs have (total static footprint stays large; see mainFunc).
	callee := (k + 1) % p.Funcs
	g.emitf("\tif (d > 0) {\n")
	g.emitf("\t\tx = x + work_%d(x ^ %d, d - 1);\n", callee, k+1)
	g.emitf("\t}\n")
	if p.CallDepth >= 3 {
		callee2 := (k + 2) % p.Funcs
		g.emitf("\tif (d > 1 && (x & 3) == 0) {\n")
		g.emitf("\t\tx = x + work_%d(x + %d, d - 2);\n", callee2, k+3)
		g.emitf("\t}\n")
	}
	g.emitf("\treturn x & 1048575;\n}\n\n")
}

// dispatch emits the binary dispatch tree routing a selector to a worker —
// static code in its own right, like a compiled switch.
func (g *gen) dispatch(lo, hi int) {
	if hi-lo == 1 {
		return
	}
	mid := (lo + hi) / 2
	g.dispatch(lo, mid)
	g.dispatch(mid, hi)
	g.emitf("func disp_%d_%d(sel, x, d) {\n", lo, hi)
	if mid-lo == 1 {
		g.emitf("\tif (sel < %d) { return work_%d(x, d); }\n", mid, lo)
	} else {
		g.emitf("\tif (sel < %d) { return disp_%d_%d(sel, x, d); }\n", mid, lo, mid)
	}
	if hi-mid == 1 {
		g.emitf("\treturn work_%d(x, d);\n", mid)
	} else {
		g.emitf("\treturn disp_%d_%d(sel, x, d);\n", mid, hi)
	}
	g.emitf("}\n\n")
}

// callRoot returns the dispatch entry call expression.
func (g *gen) callRoot(sel, x, d string) string {
	if g.p.Funcs == 1 {
		return fmt.Sprintf("work_0(%s, %s)", x, d)
	}
	return fmt.Sprintf("disp_0_%d(%s, %s, %s)", g.p.Funcs, sel, x, d)
}

func (g *gen) mainFunc() {
	p := g.p
	span := p.PhaseSpan
	if span == 0 {
		span = 4
	}
	if span > p.Funcs {
		span = p.Funcs
	}
	g.emitf("func main() {\n")
	g.emitf("\tinitdata();\n")
	g.emitf("\tvar i;\n\tvar acc = 0;\n")
	g.emitf("\tfor (i = 0; i < %d; i = i + 1) {\n", p.OuterIters)
	g.emitf("\t\ttick = tick + 1;\n")
	// Phase-based locality: for 64 consecutive iterations the program
	// works within a small neighborhood of functions, then the phase
	// rotates. The instantaneous working set is small (real programs'
	// icache locality) while the full static footprint is exercised over
	// the run, so capacity misses appear exactly when the icache cannot
	// hold a phase's code.
	g.emitf("\t\tvar phase = ((i >> 6) * 5) %% %d;\n", p.Funcs)
	g.emitf("\t\tvar sel = (phase + (i %% %d)) %% %d;\n", span, p.Funcs)
	// Call arguments depend only on the loop counter, never on acc: the
	// call trees of successive iterations are dataflow-independent, so the
	// machine sees instruction-level parallelism across iterations and is
	// fetch-bound, as on the paper's workloads. acc only accumulates
	// results (one add per iteration).
	g.emitf("\t\tacc = acc + %s;\n", g.callRoot("sel", "(i * 73 + 19) & 1048575", fmt.Sprint(p.CallDepth)))
	g.emitf("\t\tacc = acc & 16777215;\n")
	g.emitf("\t}\n")
	g.emitf("\tout(acc);\n}\n")
}
