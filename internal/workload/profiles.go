// Package workload generates the eight synthetic MiniC benchmarks that
// stand in for SPECint95 (Table 2 of the paper). The real benchmarks and
// their reference inputs are not reproducible here; instead each profile is
// a deterministic, seeded program generator tuned to reproduce the
// control-flow character that drives the paper's results for that
// benchmark:
//
//   - mean basic-block size (SPECint's 4–5 operations),
//   - branch bias and predictability (gcc/go are dominated by unbiased,
//     hard-to-predict branches; vortex/m88ksim by highly biased ones),
//   - static code footprint relative to the icache (gcc/go are big-code;
//     compress/li/ijpeg are small kernels),
//   - call/return density (the main limiter of block enlargement, §5),
//   - loop structure and data-access locality.
//
// Programs index all arrays through power-of-two masks, bound every loop,
// and bound recursion depth, so every generated program terminates and
// never traps.
package workload

import "fmt"

// Profile parameterizes one synthetic benchmark.
type Profile struct {
	// Name is the SPECint95 benchmark this profile models.
	Name string
	// Input names the modeled reference input (Table 2 flavor text).
	Input string
	// Seed drives all generation randomness.
	Seed int64

	// Funcs is the number of worker functions (static code size knob).
	Funcs int
	// CondsPerFunc is the if/else-chain length per worker.
	CondsPerFunc int
	// StmtsPerArm is the statement count per conditional arm (basic block
	// size knob; SPECint-like blocks want 2–4 simple statements).
	StmtsPerArm int
	// BiasPercent is the taken-probability (0–100) of data-dependent
	// branches: 50 is unbiased/unpredictable, 90+ is highly predictable.
	BiasPercent int
	// PatternedFrac1000 is the per-mille fraction of conditions that test
	// loop-counter patterns (perfectly history-predictable) instead of
	// random data.
	PatternedFrac1000 int
	// CallDepth bounds worker-to-worker call recursion.
	CallDepth int
	// InnerIters is the per-worker inner loop trip count.
	InnerIters int
	// OuterIters is main's driver loop trip count (dynamic size knob).
	OuterIters int
	// DataWords sizes the global data array (power of two).
	DataWords int
	// PhaseSpan is how many neighboring workers each 64-iteration phase
	// touches (instantaneous working-set knob); 0 means 4.
	PhaseSpan int
	// LibFuncs is the number of library helper functions (rule-5 code).
	LibFuncs int
}

// Validate rejects profiles the generator cannot render faithfully. The
// critical constraint is DataWords: every data access is masked with
// DataWords-1, which only selects in-range indices when DataWords is a power
// of two — anything else would silently alias data indices and corrupt the
// branch-outcome stream the profile is tuned to produce.
func (p Profile) Validate() error {
	if p.DataWords <= 0 || p.DataWords&(p.DataWords-1) != 0 {
		return fmt.Errorf("workload: profile %q: DataWords %d must be a positive power of two",
			p.Name, p.DataWords)
	}
	if p.Funcs < 1 {
		return fmt.Errorf("workload: profile %q: Funcs %d must be >= 1", p.Name, p.Funcs)
	}
	if p.OuterIters < 1 {
		return fmt.Errorf("workload: profile %q: OuterIters %d must be >= 1", p.Name, p.OuterIters)
	}
	if p.BiasPercent < 0 || p.BiasPercent > 100 {
		return fmt.Errorf("workload: profile %q: BiasPercent %d must be in [0,100]", p.Name, p.BiasPercent)
	}
	if p.PatternedFrac1000 < 0 || p.PatternedFrac1000 > 1000 {
		return fmt.Errorf("workload: profile %q: PatternedFrac1000 %d must be in [0,1000]",
			p.Name, p.PatternedFrac1000)
	}
	if p.CondsPerFunc < 0 || p.StmtsPerArm < 0 || p.CallDepth < 0 || p.InnerIters < 0 ||
		p.PhaseSpan < 0 || p.LibFuncs < 0 {
		return fmt.Errorf("workload: profile %q: negative size parameter", p.Name)
	}
	return nil
}

// Profiles returns the eight benchmark profiles in the paper's Table 2
// order. Scale multiplies dynamic work (OuterIters); 1.0 is bsbench's
// reference scale, tests use smaller values.
func Profiles(scale float64) []Profile {
	if scale <= 0 {
		scale = 1
	}
	ps := []Profile{
		{
			// compress: tiny loop kernel, moderately biased branches.
			Name: "compress", Input: "test.in*", Seed: 101,
			Funcs: 6, CondsPerFunc: 5, StmtsPerArm: 2,
			BiasPercent: 88, PatternedFrac1000: 650,
			CallDepth: 1, InnerIters: 10, OuterIters: 5200,
			DataWords: 2048, LibFuncs: 2,
		},
		{
			// gcc: very large code, many small blocks, unbiased branches.
			Name: "gcc", Input: "jump.i", Seed: 102,
			Funcs: 150, CondsPerFunc: 10, StmtsPerArm: 1,
			BiasPercent: 70, PatternedFrac1000: 450,
			CallDepth: 2, InnerIters: 2, OuterIters: 2400,
			DataWords: 4096, LibFuncs: 6,
		},
		{
			// go: large code, many unbiased branches (the paper's
			// icache-loss case).
			Name: "go", Input: "2stone9.in*", Seed: 103,
			Funcs: 110, CondsPerFunc: 14, StmtsPerArm: 1,
			BiasPercent: 52, PatternedFrac1000: 400,
			CallDepth: 2, InnerIters: 3, OuterIters: 2600,
			DataWords: 4096, LibFuncs: 4, PhaseSpan: 7,
		},
		{
			// ijpeg: small loop-dominated kernel, larger blocks, biased.
			Name: "ijpeg", Input: "specmun.ppm*", Seed: 104,
			Funcs: 12, CondsPerFunc: 5, StmtsPerArm: 3,
			BiasPercent: 90, PatternedFrac1000: 550,
			CallDepth: 1, InnerIters: 14, OuterIters: 3400,
			DataWords: 8192, LibFuncs: 2,
		},
		{
			// li: small code, call/return-dominated (recursive evaluator).
			Name: "li", Input: "train.lsp", Seed: 105,
			Funcs: 24, CondsPerFunc: 4, StmtsPerArm: 1,
			BiasPercent: 82, PatternedFrac1000: 450,
			CallDepth: 4, InnerIters: 1, OuterIters: 5200,
			DataWords: 2048, LibFuncs: 3,
		},
		{
			// m88ksim: moderate code, highly predictable branches (the
			// paper's best case, ~20% gain).
			Name: "m88ksim", Input: "dcrand.train", Seed: 106,
			Funcs: 32, CondsPerFunc: 6, StmtsPerArm: 2,
			BiasPercent: 93, PatternedFrac1000: 700,
			CallDepth: 2, InnerIters: 5, OuterIters: 3600,
			DataWords: 2048, LibFuncs: 3,
		},
		{
			// perl: large-ish interpreter loop, mixed-bias dispatch.
			Name: "perl", Input: "scrabbl.pl*", Seed: 107,
			Funcs: 70, CondsPerFunc: 7, StmtsPerArm: 1,
			BiasPercent: 78, PatternedFrac1000: 450,
			CallDepth: 3, InnerIters: 2, OuterIters: 2600,
			DataWords: 4096, LibFuncs: 5,
		},
		{
			// vortex: large OO database, very biased branches, call heavy.
			Name: "vortex", Input: "vortex.big*", Seed: 108,
			Funcs: 90, CondsPerFunc: 4, StmtsPerArm: 2,
			BiasPercent: 94, PatternedFrac1000: 550,
			CallDepth: 3, InnerIters: 3, OuterIters: 2800,
			DataWords: 4096, LibFuncs: 5,
		},
	}
	for i := range ps {
		ps[i].OuterIters = int(float64(ps[i].OuterIters) * scale)
		if ps[i].OuterIters < 8 {
			ps[i].OuterIters = 8
		}
	}
	return ps
}

// ProfileByName returns the named profile at the given scale.
func ProfileByName(name string, scale float64) (Profile, bool) {
	for _, p := range Profiles(scale) {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}
