package bpred

import (
	"testing"

	"bsisa/internal/isa"
)

// jrBlock builds a BSA block ending in an indirect jump.
func jrBlock(addr uint32) *isa.Block {
	b := isa.NewBlock(0)
	b.ID = 50
	b.Addr = addr
	b.Ops = []isa.Op{{Opcode: isa.JR, Rs1: 5}}
	b.Succs = []isa.BlockID{1, 2, 3}
	b.TakenCount = 0
	b.RecomputeHistBits()
	return b
}

// TestBSAJRStatsSymmetry is the regression test for the JR accounting
// asymmetry: every JR probe must count as a lookup, hit or miss, so that
// BTBMisses never exceeds Lookups and indirect-jump hit rates are
// well-defined.
func TestBSAJRStatsSymmetry(t *testing.T) {
	p := NewBSA(Config{})
	b := jrBlock(0x4000)

	// Cold probe: no BTB entry yet — one lookup, one miss.
	if got := p.Predict(b); got != isa.NoBlock {
		t.Fatalf("cold JR predict = %d, want NoBlock", got)
	}
	if s := p.Stats(); s.Lookups != 1 || s.BTBMisses != 1 {
		t.Fatalf("after cold probe: Lookups=%d BTBMisses=%d, want 1/1", s.Lookups, s.BTBMisses)
	}

	// Train the target, then probe again: one more lookup, no new miss.
	p.Update(b, 2, false, -1)
	if got := p.Predict(b); got != 2 {
		t.Fatalf("warm JR predict = %d, want 2", got)
	}
	if s := p.Stats(); s.Lookups != 2 || s.BTBMisses != 1 {
		t.Fatalf("after warm probe: Lookups=%d BTBMisses=%d, want 2/1", s.Lookups, s.BTBMisses)
	}

	// The miss count must never outrun the lookup count over a mixed
	// hit/miss sequence.
	for i := 0; i < 100; i++ {
		p.Predict(b)
		p.Update(b, isa.BlockID(1+i%3), false, -1)
	}
	if s := p.Stats(); s.BTBMisses > s.Lookups {
		t.Fatalf("BTBMisses %d > Lookups %d", s.BTBMisses, s.Lookups)
	}
}

// TestSelectInClampsToCanonical is the table-driven regression test for the
// out-of-range variant-selection fold: counter states naming a nonexistent
// variant must fall back to the canonical variant (index 0), never alias
// onto an arbitrary sibling via a modulo.
func TestSelectInClampsToCanonical(t *testing.T) {
	group8 := []isa.BlockID{10, 11, 12, 13, 14, 15, 16, 17}
	cases := []struct {
		name  string
		size  int
		f1    uint8 // high selection bit counter
		f2    uint8 // low selection bit counter
		want  isa.BlockID
		inSel int // decoded selection before range handling
	}{
		{"size3/sel0", 3, 0, 0, 10, 0},
		{"size3/sel1", 3, 0, 3, 11, 1},
		{"size3/sel2", 3, 3, 0, 12, 2},
		// sel 3 with 3 variants: modulo would alias onto variant 0 too, but
		// by accident; the clamp makes the fall-back explicit.
		{"size3/sel3", 3, 3, 3, 10, 3},
		// sel 2/3 with 2 variants: the old modulo sent sel 3 to variant 1,
		// biasing selection away from the canonical variant.
		{"size2/sel2", 2, 3, 0, 10, 2},
		{"size2/sel3", 2, 3, 3, 10, 3},
		{"size1/sel3", 1, 3, 3, 10, 3},
		{"size4/sel3", 4, 3, 3, 13, 3},
	}
	for _, tc := range cases {
		c := &bsaCounters{f1: tc.f1, f2: tc.f2}
		got := selectIn(group8[:tc.size], c)
		if got != tc.want {
			t.Errorf("%s: selectIn = %d, want %d", tc.name, got, tc.want)
		}
	}
}
