package bpred

import (
	"math/rand"
	"testing"

	"bsisa/internal/isa"
)

// condBlock builds a conventional conditional block at addr with successors
// taken=1, fall=2.
func condBlock(addr uint32) *isa.Block {
	b := isa.NewBlock(0)
	b.ID = 0
	b.Addr = addr
	b.Ops = []isa.Op{{Opcode: isa.BR, Rs1: 5, Target: 1}}
	b.Succs = []isa.BlockID{1, 2}
	b.TakenCount = 1
	b.RecomputeHistBits()
	return b
}

// trapBlock builds a BSA block with a variant-group successor list.
func trapBlock(addr uint32, takenG, fallG []isa.BlockID) *isa.Block {
	b := isa.NewBlock(0)
	b.ID = 100
	b.Addr = addr
	b.Ops = []isa.Op{{Opcode: isa.TRAP, Rs1: 5}}
	b.Succs = append(append([]isa.BlockID{}, takenG...), fallG...)
	b.TakenCount = len(takenG)
	b.RecomputeHistBits()
	return b
}

func TestTwoLevelLearnsAlwaysTaken(t *testing.T) {
	p := NewTwoLevel(Config{})
	b := condBlock(0x1000)
	correct := 0
	for i := 0; i < 100; i++ {
		pred := p.Predict(b)
		if pred == 1 {
			correct++
		}
		p.Update(b, 1, true, 0)
	}
	// After warmup (history register fill + counter + BTB fill) it must
	// predict taken; each new history pattern trains its own counter.
	if correct < 80 {
		t.Errorf("always-taken predicted correctly %d/100", correct)
	}
}

func TestTwoLevelLearnsAlternation(t *testing.T) {
	// T,N,T,N... is perfectly predictable with history.
	p := NewTwoLevel(Config{HistoryBits: 4})
	b := condBlock(0x2000)
	correct := 0
	for i := 0; i < 400; i++ {
		taken := i%2 == 0
		actual := isa.BlockID(2)
		if taken {
			actual = 1
		}
		if p.Predict(b) == actual {
			correct++
		}
		p.Update(b, actual, taken, b.SuccIndex(actual))
	}
	if correct < 300 {
		t.Errorf("alternating pattern predicted %d/400", correct)
	}
}

func TestTwoLevelBTBMissOnFirstTaken(t *testing.T) {
	p := NewTwoLevel(Config{})
	b := condBlock(0x3000)
	// Train direction taken until the history register saturates and the
	// steady-state counter is confident; Update also fills the BTB.
	for i := 0; i < 30; i++ {
		p.Update(b, 1, true, 0)
	}
	if got := p.Predict(b); got != 1 {
		t.Errorf("trained predictor predicts %d, want 1", got)
	}
}

func TestTwoLevelRAS(t *testing.T) {
	p := NewTwoLevel(Config{})
	// call block: cont=7
	call := isa.NewBlock(0)
	call.Addr = 0x4000
	call.Ops = []isa.Op{{Opcode: isa.CALL, Target: 50}}
	call.Succs = []isa.BlockID{50}
	call.Cont = 7

	ret := isa.NewBlock(0)
	ret.Addr = 0x5000
	ret.Ops = []isa.Op{{Opcode: isa.RET, Rs1: isa.RegLR}}

	if got := p.Predict(call); got != 50 {
		t.Errorf("call predicts %d, want callee 50", got)
	}
	if got := p.Predict(ret); got != 7 {
		t.Errorf("ret predicts %d, want continuation 7", got)
	}
	// Empty RAS: no target.
	if got := p.Predict(ret); got != isa.NoBlock {
		t.Errorf("ret with empty RAS predicts %d, want none", got)
	}
}

func TestRASOverflowWraps(t *testing.T) {
	r := newRAS(4)
	for i := 1; i <= 6; i++ {
		r.push(isa.BlockID(i))
	}
	// Deepest two (1,2) were overwritten; pops yield 6,5,4,3 then empty.
	want := []isa.BlockID{6, 5, 4, 3}
	for _, w := range want {
		v, ok := r.pop()
		if !ok || v != w {
			t.Fatalf("pop = %d,%v want %d", v, ok, w)
		}
	}
	if _, ok := r.pop(); ok {
		t.Error("RAS should be empty")
	}
}

func TestBSALearnsVariantSelection(t *testing.T) {
	// Taken group {10,11}, fall group {20}. Actual pattern: always taken,
	// always variant 11 (within-group index 1).
	p := NewBSA(Config{})
	b := trapBlock(0x6000, []isa.BlockID{10, 11}, []isa.BlockID{20})
	correct := 0
	for i := 0; i < 200; i++ {
		if p.Predict(b) == 11 {
			correct++
		}
		p.Update(b, 11, true, 1)
	}
	if correct < 180 {
		t.Errorf("variant selection learned %d/200", correct)
	}
}

func TestBSAFillsBTBWithDiscoveredSuccessors(t *testing.T) {
	p := NewBSA(Config{})
	b := trapBlock(0x7000, []isa.BlockID{10, 11, 12, 13}, []isa.BlockID{20, 21})
	// First prediction allocates the entry with the two canonical targets.
	p.Predict(b)
	e := p.btb.lookup(pcOf(b))
	if e == nil {
		t.Fatal("no BTB entry after first prediction")
	}
	if len(e.targets) != 2 || !e.has(10) || !e.has(20) {
		t.Fatalf("initial targets %v, want canonical 10 and 20", e.targets)
	}
	// Updates reveal more successors.
	for _, actual := range []isa.BlockID{11, 12, 13, 21} {
		p.Update(b, actual, actual < 20, b.SuccIndex(actual))
	}
	for _, want := range []isa.BlockID{10, 11, 12, 13, 20, 21} {
		if !e.has(want) {
			t.Errorf("BTB missing discovered successor %d (%v)", want, e.targets)
		}
	}
}

func TestBSAPredictsEightWayMix(t *testing.T) {
	// Deterministic pattern over 4 successors, keyed by history: the
	// predictor should end well above the 25% chance floor.
	p := NewBSA(Config{HistoryBits: 8})
	b := trapBlock(0x8000, []isa.BlockID{10, 11}, []isa.BlockID{20, 21})
	seq := []struct {
		actual isa.BlockID
		taken  bool
	}{{10, true}, {10, true}, {21, false}, {11, true}}
	correct, total := 0, 0
	for round := 0; round < 300; round++ {
		for _, s := range seq {
			if p.Predict(b) == s.actual {
				correct++
			}
			total++
			p.Update(b, s.actual, s.taken, b.SuccIndex(s.actual))
		}
	}
	if float64(correct)/float64(total) < 0.5 {
		t.Errorf("periodic 4-way pattern predicted %d/%d", correct, total)
	}
}

func TestBSASingleSuccessorNeedsNoPrediction(t *testing.T) {
	p := NewBSA(Config{})
	b := isa.NewBlock(0)
	b.Addr = 0x9000
	b.Succs = []isa.BlockID{33}
	if got := p.Predict(b); got != 33 {
		t.Errorf("single-successor predicts %d", got)
	}
	if p.Stats().Lookups != 0 {
		t.Error("single successor should not count as a lookup")
	}
}

func TestBSAHistoryShiftVariable(t *testing.T) {
	p := NewBSA(Config{HistoryBits: 12})
	b2 := trapBlock(0xA000, []isa.BlockID{10}, []isa.BlockID{20}) // 1 hist bit
	b8 := trapBlock(0xB000, []isa.BlockID{10, 11, 12, 13}, []isa.BlockID{20, 21, 22, 23})
	if b2.HistBits != 1 || b8.HistBits != 3 {
		t.Fatalf("HistBits = %d, %d", b2.HistBits, b8.HistBits)
	}
	p.Update(b2, 10, true, 0)
	if p.bhr != 0 {
		t.Errorf("bhr after 1-bit taken-canonical update = %b, want 0", p.bhr)
	}
	p.Update(b8, 13, true, 3)
	if p.bhr != 0b011 {
		t.Errorf("bhr after 3-bit update = %b, want 011", p.bhr)
	}
	p.Update(b2, 20, false, 1)
	if p.bhr != 0b0111 {
		t.Errorf("bhr = %b, want 0111", p.bhr)
	}
}

func TestBTBEvictionLRU(t *testing.T) {
	b := newBTB(1, 2, 1) // one set, two ways
	e1 := b.insert(0x10)
	e1.add(1, 1)
	e2 := b.insert(0x20)
	e2.add(2, 1)
	b.lookup(0x10) // refresh 0x10
	b.insert(0x30) // evicts 0x20
	if b.lookup(0x10) == nil {
		t.Error("0x10 evicted despite recent use")
	}
	if b.lookup(0x20) != nil {
		t.Error("0x20 should have been evicted")
	}
}

func TestPredictorsAreDeterministic(t *testing.T) {
	mk := func() (Predictor, *isa.Block) {
		return NewBSA(Config{}), trapBlock(0xC000, []isa.BlockID{10, 11}, []isa.BlockID{20})
	}
	run := func() []isa.BlockID {
		p, b := mk()
		r := rand.New(rand.NewSource(42))
		var preds []isa.BlockID
		for i := 0; i < 200; i++ {
			preds = append(preds, p.Predict(b))
			choices := []isa.BlockID{10, 11, 20}
			a := choices[r.Intn(3)]
			p.Update(b, a, a < 20, b.SuccIndex(a))
		}
		return preds
	}
	a, bb := run(), run()
	for i := range a {
		if a[i] != bb[i] {
			t.Fatalf("nondeterministic prediction at %d", i)
		}
	}
}
