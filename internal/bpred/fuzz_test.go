package bpred

import (
	"testing"

	"bsisa/internal/isa"
)

// fuzzWorld builds a small synthetic CFG for driving the BSA predictor: a
// pool of trap-terminated variant-choice blocks plus one indirect jump, with
// distinct addresses so BTB entries do not alias by construction.
func fuzzWorld(shape []byte) []*isa.Block {
	if len(shape) == 0 {
		shape = []byte{0}
	}
	n := 4 + int(shape[0]%5) // 4..8 blocks
	blocks := make([]*isa.Block, n)
	for i := 0; i < n; i++ {
		b := isa.NewBlock(0)
		b.ID = isa.BlockID(i)
		b.Addr = uint32(0x1000 + 0x40*i)
		pick := byte(i)
		if i+1 < len(shape) {
			pick = shape[i+1]
		}
		nSuccs := 2 + int(pick%7) // 2..8 successors
		for s := 0; s < nSuccs; s++ {
			b.Succs = append(b.Succs, isa.BlockID((i+s+1)%n))
		}
		if pick&0x40 != 0 {
			// Indirect jump block: all successors discovered via the BTB.
			b.Ops = []isa.Op{{Opcode: isa.JR}}
			b.TakenCount = 0
		} else {
			b.Ops = []isa.Op{{Opcode: isa.TRAP}}
			b.TakenCount = 1 + int(pick>>3)%(nSuccs-1)
		}
		b.RecomputeHistBits()
		blocks[i] = b
	}
	return blocks
}

// FuzzPredictor drives two identically configured BSA predictors through a
// block/outcome sequence decoded from the fuzz input and checks the
// predictor's contract at every step:
//
//   - a prediction is either NoBlock or one of the block's successors;
//   - the predictor is deterministic (both instances always agree);
//   - BTB misses never exceed lookups (the JR stats symmetry bug class);
//   - stats counters never decrease.
func FuzzPredictor(f *testing.F) {
	f.Add([]byte{0x01, 0x02, 0x03, 0x10, 0x44, 0x85, 0xff, 0x00, 0x31})
	f.Add([]byte{0x04, 0x47, 0x47, 0x47, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06})
	f.Add([]byte{0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			t.Skip()
		}
		world := fuzzWorld(data[:len(data)/2])
		drive := data[len(data)/2:]
		a := NewBSA(Config{})
		b := NewBSA(Config{})
		var prev Stats
		for _, step := range drive {
			blk := world[int(step)%len(world)]
			got := a.Predict(blk)
			if mirror := b.Predict(blk); mirror != got {
				t.Fatalf("B%d: predictors diverged: %d vs %d", blk.ID, got, mirror)
			}
			if got != isa.NoBlock && blk.SuccIndex(got) < 0 {
				t.Fatalf("B%d: predicted B%d, not a successor of %v", blk.ID, got, blk.Succs)
			}
			oi := int(step>>2) % len(blk.Succs)
			actual := blk.Succs[oi]
			taken := oi < blk.TakenCount
			a.Update(blk, actual, taken, oi)
			b.Update(blk, actual, taken, oi)

			s := a.Stats()
			if s.BTBMisses > s.Lookups {
				t.Fatalf("B%d: BTBMisses %d exceeds Lookups %d", blk.ID, s.BTBMisses, s.Lookups)
			}
			if s.Lookups < prev.Lookups || s.BTBMisses < prev.BTBMisses || s.RASReturns < prev.RASReturns {
				t.Fatalf("B%d: stats went backwards: %+v -> %+v", blk.ID, prev, s)
			}
			prev = s
		}
	})
}
