package bpred

import (
	"errors"
	"math/rand"
	"testing"

	"bsisa/internal/isa"
)

func TestConfigValidate(t *testing.T) {
	good := []Config{
		{}, // zero config takes defaults
		{HistoryBits: 16, PHTEntries: 1024, BTBSets: 64, BTBWays: 2, RASDepth: 4},
		{HistoryBits: 32},
		{PHTEntries: 1},
	}
	for i, cfg := range good {
		if err := cfg.Validate(); err != nil {
			t.Errorf("good config %d rejected: %v", i, err)
		}
	}
	bad := []Config{
		{HistoryBits: -1},
		{HistoryBits: 33}, // beyond the 32-bit BHR
		{PHTEntries: 3000},
		{PHTEntries: -8},
		{BTBSets: 48},
		{BTBWays: -1},
		{RASDepth: -2},
	}
	for i, cfg := range bad {
		err := cfg.Validate()
		if err == nil {
			t.Errorf("bad config %d (%+v) accepted", i, cfg)
			continue
		}
		if !errors.Is(err, ErrBadConfig) {
			t.Errorf("bad config %d: error %v does not match ErrBadConfig", i, err)
		}
	}
}

// callRetPair builds a CALL block (continuation cont) and a RET block.
func callRetPair(addr uint32, callee, cont isa.BlockID) (*isa.Block, *isa.Block) {
	call := isa.NewBlock(0)
	call.Addr = addr
	call.Ops = []isa.Op{{Opcode: isa.CALL, Target: callee}}
	call.Succs = []isa.BlockID{callee}
	call.Cont = cont
	ret := isa.NewBlock(0)
	ret.Addr = addr + 0x100
	ret.Ops = []isa.Op{{Opcode: isa.RET, Rs1: isa.RegLR}}
	return call, ret
}

// bankGrid is a mixed predictor grid: history length, PHT size, BTB geometry
// and RAS depth all vary, like the sweeps the fused engine serves.
func bankGrid() []Config {
	return []Config{
		{}, // defaults
		{HistoryBits: 1},
		{HistoryBits: 16, PHTEntries: 1024},
		{HistoryBits: 4, BTBSets: 64, BTBWays: 2},
		{HistoryBits: 12, PHTEntries: 4096, BTBSets: 128, RASDepth: 4},
		{HistoryBits: 32, PHTEntries: 65536},
	}
}

// convEvent/bsaEvent drive one random committed control event against a
// predictor, returning its prediction (for the lockstep comparison).
type streamEvent struct {
	b       *isa.Block
	actual  isa.BlockID
	taken   bool
	succIdx int
}

// convStream generates a random conventional committed stream over
// conditional branches, an indirect jump, and call/return pairs.
func convStream(r *rand.Rand, n int) []streamEvent {
	conds := []*isa.Block{condBlock(0x1000), condBlock(0x2000), condBlock(0x2040)}
	jr := jrBlock(0x3000)
	call, ret := callRetPair(0x4000, 50, 7)
	evs := make([]streamEvent, 0, n)
	for i := 0; i < n; i++ {
		switch r.Intn(6) {
		case 0:
			target := isa.BlockID(60 + r.Intn(3))
			evs = append(evs, streamEvent{b: jr, actual: target, taken: true, succIdx: -1})
		case 1:
			evs = append(evs, streamEvent{b: call, actual: 50, taken: true, succIdx: 0})
			evs = append(evs, streamEvent{b: ret, actual: 7, taken: true, succIdx: -1})
		default:
			b := conds[r.Intn(len(conds))]
			taken := r.Intn(3) != 0
			actual := b.Succs[1]
			if taken {
				actual = b.Succs[0]
			}
			evs = append(evs, streamEvent{b: b, actual: actual, taken: taken, succIdx: b.SuccIndex(actual)})
		}
	}
	return evs
}

// bsaStream generates a random block-structured committed stream over trap
// blocks with multi-variant groups (variable HistBits), plus call/returns.
func bsaStream(r *rand.Rand, n int) []streamEvent {
	traps := []*isa.Block{
		trapBlock(0x1000, []isa.BlockID{10, 11}, []isa.BlockID{20}),
		trapBlock(0x2000, []isa.BlockID{10, 11, 12, 13}, []isa.BlockID{20, 21, 22, 23}),
		trapBlock(0x2100, []isa.BlockID{30}, []isa.BlockID{40}),
	}
	call, ret := callRetPair(0x4000, 50, 7)
	evs := make([]streamEvent, 0, n)
	for i := 0; i < n; i++ {
		if r.Intn(8) == 0 {
			evs = append(evs, streamEvent{b: call, actual: 50, taken: true, succIdx: 0})
			evs = append(evs, streamEvent{b: ret, actual: 7, taken: true, succIdx: -1})
			continue
		}
		b := traps[r.Intn(len(traps))]
		idx := r.Intn(len(b.Succs))
		evs = append(evs, streamEvent{b: b, actual: b.Succs[idx], taken: idx < b.TakenCount, succIdx: idx})
	}
	return evs
}

// TestBankMatchesSingles is the lockstep property test: a Bank over a mixed
// grid must emit, per event and per lane, exactly the prediction an
// independent standalone predictor of that lane's configuration emits, and
// finish with identical stats.
func TestBankMatchesSingles(t *testing.T) {
	for _, tc := range []struct {
		name   string
		kind   isa.Kind
		stream func(*rand.Rand, int) []streamEvent
	}{
		{"conv", isa.Conventional, convStream},
		{"bsa", isa.BlockStructured, bsaStream},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 5; seed++ {
				cfgs := bankGrid()
				bank := NewBank(tc.kind, cfgs)
				singles := make([]Predictor, len(cfgs))
				for i, cfg := range cfgs {
					if tc.kind == isa.BlockStructured {
						singles[i] = NewBSA(cfg)
					} else {
						singles[i] = NewTwoLevel(cfg)
					}
				}
				evs := tc.stream(rand.New(rand.NewSource(seed)), 3000)
				out := make([]isa.BlockID, bank.Len())
				for ei, ev := range evs {
					bank.Step(ev.b, ev.actual, ev.taken, ev.succIdx, out)
					for l, p := range singles {
						want := p.Predict(ev.b)
						p.Update(ev.b, ev.actual, ev.taken, ev.succIdx)
						if out[l] != want {
							t.Fatalf("seed %d event %d lane %d: bank predicts %d, single predicts %d",
								seed, ei, l, out[l], want)
						}
					}
				}
				for l, p := range singles {
					if got, want := bank.LaneStats(l), p.Stats(); got != want {
						t.Fatalf("seed %d lane %d stats diverge:\nbank   %+v\nsingle %+v", seed, l, got, want)
					}
				}
			}
		})
	}
}

// TestBankStepAllocs pins the Bank hot path at zero steady-state
// allocations: after warmup (BTB target slices at capacity), stepping the
// whole grid through a long stream must not allocate.
func TestBankStepAllocs(t *testing.T) {
	for _, tc := range []struct {
		name   string
		kind   isa.Kind
		stream func(*rand.Rand, int) []streamEvent
	}{
		{"conv", isa.Conventional, convStream},
		{"bsa", isa.BlockStructured, bsaStream},
	} {
		t.Run(tc.name, func(t *testing.T) {
			bank := NewBank(tc.kind, bankGrid())
			evs := tc.stream(rand.New(rand.NewSource(9)), 2000)
			out := make([]isa.BlockID, bank.Len())
			step := func() {
				for _, ev := range evs {
					bank.Step(ev.b, ev.actual, ev.taken, ev.succIdx, out)
				}
			}
			step() // warmup: BTB entries allocate their target slices once
			if avg := testing.AllocsPerRun(5, step); avg > 0 {
				t.Errorf("Bank.Step allocates %.1f times per %d-event stream after warmup", avg, len(evs))
			}
		})
	}
}
