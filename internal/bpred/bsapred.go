package bpred

import (
	"fmt"

	"bsisa/internal/isa"
)

// BSA is the paper's modified Two-Level Adaptive predictor for
// block-structured ISAs (§4.3). Three modifications over TwoLevel:
//
//  1. BTB entries store up to MaxTargets successor targets. On first
//     encounter the trap's two explicitly specified targets are stored; the
//     remaining slots fill in as fault mispredictions reveal new successors.
//  2. PHT entries hold three two-bit counters: one predicting the trap
//     direction and two predicting the fault-level variant selection,
//     together a three-bit prediction selecting among up to eight
//     successors.
//  3. The history register shifts in the minimum number of bits that
//     uniquely identifies the prediction — the block's HistBits annotation
//     from its trap operation — instead of always one bit.
type BSA struct {
	cfg   Config
	bhr   uint32
	pht   []bsaCounters
	btb   *btb
	ras   *ras
	stats Stats
}

// MaxTargets is the BTB successor-slot count (the paper's eight).
const MaxTargets = 8

type bsaCounters struct {
	trap uint8 // predicts trap direction
	f1   uint8 // predicts high variant-selection bit
	f2   uint8 // predicts low variant-selection bit
}

// NewBSA builds the block-structured predictor. Its tables are sized to the
// same storage budget as the conventional predictor: PHT entries hold three
// two-bit counters instead of one (a quarter of the entries), and BTB
// entries hold eight targets instead of one (an eighth of the sets). The
// paper's §4.3 notes the successor-count restriction exists precisely to
// keep the predictor's size down.
func NewBSA(cfg Config) *BSA {
	cfg = cfg.withDefaults()
	entries := cfg.PHTEntries / 4
	if entries < 1024 {
		entries = 1024
	}
	// Likewise the BTB: entries hold eight successor targets instead of
	// one, so the equal-storage organization has an eighth of the sets.
	sets := cfg.BTBSets / 8
	if sets < 32 {
		sets = 32
	}
	return &BSA{
		cfg: cfg,
		pht: make([]bsaCounters, entries),
		btb: newBTB(sets, cfg.BTBWays, MaxTargets),
		ras: newRAS(cfg.RASDepth),
	}
}

func (p *BSA) phtIndex(pc, bhr uint32) int {
	mask := uint32(len(p.pht) - 1)
	hist := bhr & (1<<uint(p.cfg.HistoryBits) - 1)
	return int((pc ^ hist) & mask)
}

// shiftBSA advances a block-structured global history register past block b:
// the variable HistBits-wide successor index for a real multi-way choice,
// nothing otherwise. Like shiftConv it is the single definition of the BHR
// evolution, shared by the standalone predictor and the sweep Bank — the
// evolution depends only on the committed outcome, never on HistoryBits,
// which merely masks the register at indexing time.
func shiftBSA(bhr uint32, b *isa.Block, succIdx int) uint32 {
	return shiftBSATerm(bhr, b, b.Terminator(), succIdx)
}

// shiftBSATerm is shiftBSA with the terminator already resolved (the Bank
// resolves it once per event for all lanes).
func shiftBSATerm(bhr uint32, b *isa.Block, t *isa.Op, succIdx int) uint32 {
	if t != nil {
		switch t.Opcode {
		case isa.CALL, isa.RET, isa.HALT, isa.JR:
			return bhr
		}
	}
	if len(b.Succs) <= 1 || b.HistBits <= 0 {
		return bhr
	}
	v := uint32(0)
	if succIdx >= 0 {
		v = uint32(succIdx)
	}
	return bhr<<uint(b.HistBits) | (v & (1<<uint(b.HistBits) - 1))
}

// groups splits a block's successor list into the trap-taken and
// trap-not-taken variant groups, given the block's already-resolved
// terminator. Blocks without a trap have a single group.
func groups(b *isa.Block, t *isa.Op) (takenG, fallG []isa.BlockID, hasTrap bool) {
	if t != nil && t.Opcode == isa.TRAP && b.TakenCount > 0 && b.TakenCount < len(b.Succs) {
		return b.Succs[:b.TakenCount], b.Succs[b.TakenCount:], true
	}
	return b.Succs, nil, false
}

// selectIn picks a variant within a group using the fault counters.
func selectIn(group []isa.BlockID, c *bsaCounters) isa.BlockID {
	sel := 0
	if taken2(c.f1) {
		sel |= 2
	}
	if taken2(c.f2) {
		sel |= 1
	}
	if sel >= len(group) {
		// The counters name a variant that does not exist in this group.
		// Fall back to the canonical variant (index 0), the trap's explicit
		// target. Folding with a modulo instead would alias the out-of-range
		// counter states unevenly onto non-canonical variants whenever the
		// group size is not a power of two, biasing selection away from the
		// canonical variant the training loop saturates toward.
		sel = 0
	}
	return group[sel]
}

// Predict implements Predictor.
func (p *BSA) Predict(b *isa.Block) isa.BlockID {
	return p.predictWith(b, p.bhr)
}

// predictWith is Predict against an explicit history register (the Bank
// supplies a shared one; the standalone path passes p.bhr).
func (p *BSA) predictWith(b *isa.Block, bhr uint32) isa.BlockID {
	t := b.Terminator()
	if t != nil {
		switch t.Opcode {
		case isa.CALL:
			p.ras.push(b.Cont)
			return b.Succs[0]
		case isa.RET:
			p.stats.RASReturns++
			if v, ok := p.ras.pop(); ok {
				return v
			}
			return isa.NoBlock
		case isa.JR:
			// An indirect jump is a real multi-way prediction (the BTB entry
			// holds up to eight discovered targets), so the probe counts as a
			// lookup whether it hits or not; otherwise BTBMisses accumulate
			// against a Lookups denominator that never saw the probes and the
			// indirect-jump hit/miss rates are skewed.
			p.stats.Lookups++
			if e := p.btb.lookup(pcOf(b)); e != nil && len(e.targets) > 0 {
				return e.targets[0]
			}
			p.stats.BTBMisses++
			return isa.NoBlock
		case isa.HALT:
			return isa.NoBlock
		}
	}
	if len(b.Succs) == 0 {
		return isa.NoBlock
	}
	if len(b.Succs) == 1 {
		// Single successor: the block header names it; no prediction.
		return b.Succs[0]
	}

	p.stats.Lookups++
	e := p.btb.lookup(pcOf(b))
	if e == nil {
		// First encounter: allocate and store the trap's two explicit
		// targets (the canonical variant of each group).
		e = p.btb.insert(pcOf(b))
		tg, fg, hasTrap := groups(b, t)
		e.add(tg[0], MaxTargets)
		if hasTrap {
			e.add(fg[0], MaxTargets)
		}
	}

	c := &p.pht[p.phtIndex(pcOf(b), bhr)]
	tg, fg, hasTrap := groups(b, t)
	group := tg
	if hasTrap && !taken2(c.trap) {
		group = fg
	}
	want := selectIn(group, c)
	if e.has(want) {
		return want
	}
	// The selected variant's target is not yet in the BTB: fall back to a
	// known target within the group, preferring the canonical one.
	for _, g := range group {
		if e.has(g) {
			return g
		}
	}
	// No known target on the predicted side at all; any stored target can
	// at least keep fetch moving (its fault will redirect if wrong).
	if len(e.targets) > 0 {
		return e.targets[0]
	}
	p.stats.BTBMisses++
	return isa.NoBlock
}

// Update implements Predictor.
func (p *BSA) Update(b *isa.Block, actual isa.BlockID, taken bool, succIdx int) {
	p.updateWith(b, actual, taken, p.bhr)
	p.bhr = shiftBSA(p.bhr, b, succIdx)
}

// updateWith is Update against an explicit history register; it trains the
// tables but does not advance the register (the caller shifts it once via
// shiftBSA, whether it owns one register or shares it across a Bank).
func (p *BSA) updateWith(b *isa.Block, actual isa.BlockID, taken bool, bhr uint32) {
	t := b.Terminator()
	if t != nil {
		switch t.Opcode {
		case isa.CALL, isa.RET, isa.HALT:
			return
		case isa.JR:
			p.btb.insert(pcOf(b)).add(actual, MaxTargets)
			return
		}
	}
	if len(b.Succs) <= 1 {
		return
	}
	// Reveal the actual successor to the BTB (fault mispredictions fill the
	// remaining slots, per the paper).
	p.btb.insert(pcOf(b)).add(actual, MaxTargets)

	idx := p.phtIndex(pcOf(b), bhr)
	c := &p.pht[idx]
	tg, fg, hasTrap := groups(b, t)
	group := tg
	if hasTrap {
		c.trap = bump(c.trap, taken)
		if !taken {
			group = fg
		}
	}
	// Train the variant-selection counters toward the actual within-group
	// index.
	within := 0
	for i, g := range group {
		if g == actual {
			within = i
			break
		}
	}
	if len(group) > 1 {
		c.f1 = bump(c.f1, within&2 != 0)
		c.f2 = bump(c.f2, within&1 != 0)
	}
}

// stepTerm is predictWith immediately followed by updateWith against the
// same history register, with the terminator already resolved (the Bank
// resolves it once per event for every lane). Fusing the phases per lane is
// observationally identical to predict-all-then-update-all because every
// table it touches is private to this predictor; the shared work — PHT
// index, counter entry, variant groups — is computed once. The BTB probe
// sequence is kept call-for-call identical to the split phases: its clock
// drives LRU replacement, so eliding a probe would diverge from the
// standalone predictor.
func (p *BSA) stepTerm(b *isa.Block, t *isa.Op, actual isa.BlockID, taken bool, bhr uint32) isa.BlockID {
	if t != nil {
		switch t.Opcode {
		case isa.CALL:
			p.ras.push(b.Cont)
			return b.Succs[0]
		case isa.RET:
			p.stats.RASReturns++
			if v, ok := p.ras.pop(); ok {
				return v
			}
			return isa.NoBlock
		case isa.JR:
			p.stats.Lookups++
			pred := isa.NoBlock
			if e := p.btb.lookup(pcOf(b)); e != nil && len(e.targets) > 0 {
				pred = e.targets[0]
			} else {
				p.stats.BTBMisses++
			}
			p.btb.insert(pcOf(b)).add(actual, MaxTargets)
			return pred
		case isa.HALT:
			return isa.NoBlock
		}
	}
	if len(b.Succs) == 0 {
		return isa.NoBlock
	}
	if len(b.Succs) == 1 {
		// Single successor: the block header names it; no prediction, and
		// nothing to train.
		return b.Succs[0]
	}

	// Predict phase.
	pc := pcOf(b)
	p.stats.Lookups++
	e := p.btb.lookup(pc)
	if e == nil {
		e = p.btb.insert(pc)
		tg, fg, hasTrap := groups(b, t)
		e.add(tg[0], MaxTargets)
		if hasTrap {
			e.add(fg[0], MaxTargets)
		}
	}
	idx := p.phtIndex(pc, bhr)
	c := &p.pht[idx]
	tg, fg, hasTrap := groups(b, t)
	group := tg
	if hasTrap && !taken2(c.trap) {
		group = fg
	}
	want := selectIn(group, c)
	pred := isa.NoBlock
	if e.has(want) {
		pred = want
	} else {
		for _, g := range group {
			if e.has(g) {
				pred = g
				break
			}
		}
		if pred == isa.NoBlock {
			if len(e.targets) > 0 {
				pred = e.targets[0]
			} else {
				p.stats.BTBMisses++
			}
		}
	}

	// Update phase: reveal the actual successor, then train the trap and
	// variant-selection counters — reads of c above all happened before
	// these bumps, exactly as in the split phases.
	p.btb.insert(pc).add(actual, MaxTargets)
	ugroup := tg
	if hasTrap {
		c.trap = bump(c.trap, taken)
		if !taken {
			ugroup = fg
		}
	}
	within := 0
	for i, g := range ugroup {
		if g == actual {
			within = i
			break
		}
	}
	if len(ugroup) > 1 {
		c.f1 = bump(c.f1, within&2 != 0)
		c.f2 = bump(c.f2, within&1 != 0)
	}
	return pred
}

// Stats implements Predictor.
func (p *BSA) Stats() Stats { return p.stats }

// bsaState is a complete BSA checkpoint.
type bsaState struct {
	bhr   uint32
	pht   []bsaCounters
	btb   btbState
	ras   rasState
	stats Stats
}

func (*bsaState) stateKind() string { return "bsa" }

// Snapshot implements Predictor.
func (p *BSA) Snapshot() State {
	s := &bsaState{bhr: p.bhr, pht: make([]bsaCounters, len(p.pht)),
		btb: p.btb.snapshot(), ras: p.ras.snapshot(), stats: p.stats}
	copy(s.pht, p.pht)
	return s
}

// Restore implements Predictor.
func (p *BSA) Restore(st State) error {
	s, ok := st.(*bsaState)
	if !ok {
		return fmt.Errorf("bpred: restore: %s snapshot into a BSA predictor", st.stateKind())
	}
	if len(s.pht) != len(p.pht) {
		return fmt.Errorf("bpred: restore: PHT of %d entries does not match %d", len(s.pht), len(p.pht))
	}
	if err := p.btb.restore(s.btb); err != nil {
		return err
	}
	if err := p.ras.restore(s.ras); err != nil {
		return err
	}
	p.bhr = s.bhr
	copy(p.pht, s.pht)
	p.stats = s.stats
	return nil
}
