package bpred

import (
	"fmt"

	"bsisa/internal/isa"
)

// btb is a tagged, set-associative branch target buffer. Conventional
// entries hold one target; BSA entries hold up to eight successor slots.
type btb struct {
	sets    int
	ways    int
	slots   int
	entries []btbEntry
	clock   uint64
}

type btbEntry struct {
	valid   bool
	tag     uint32
	lastUse uint64
	targets []isa.BlockID
}

func newBTB(sets, ways, slots int) *btb {
	return &btb{sets: sets, ways: ways, slots: slots, entries: make([]btbEntry, sets*ways)}
}

func (t *btb) index(pc uint32) (int, uint32) {
	set := int(pc) & (t.sets - 1)
	return set * t.ways, pc / uint32(t.sets)
}

// lookup returns the entry for pc, or nil.
func (t *btb) lookup(pc uint32) *btbEntry {
	base, tag := t.index(pc)
	t.clock++
	for i := 0; i < t.ways; i++ {
		e := &t.entries[base+i]
		if e.valid && e.tag == tag {
			e.lastUse = t.clock
			return e
		}
	}
	return nil
}

// insert returns the (possibly recycled) entry for pc, allocating on miss.
func (t *btb) insert(pc uint32) *btbEntry {
	if e := t.lookup(pc); e != nil {
		return e
	}
	base, tag := t.index(pc)
	victim := base
	for i := 1; i < t.ways; i++ {
		e := &t.entries[base+i]
		if !e.valid {
			victim = base + i
			break
		}
		if e.lastUse < t.entries[victim].lastUse {
			victim = base + i
		}
	}
	e := &t.entries[victim]
	e.valid = true
	e.tag = tag
	e.lastUse = t.clock
	e.targets = e.targets[:0]
	return e
}

func (e *btbEntry) has(id isa.BlockID) bool {
	for _, t := range e.targets {
		if t == id {
			return true
		}
	}
	return false
}

func (e *btbEntry) add(id isa.BlockID, max int) {
	if e.has(id) {
		return
	}
	if len(e.targets) < max {
		e.targets = append(e.targets, id)
		return
	}
	// Entry full (should not happen for BSA entries sized at MaxSuccs);
	// replace the oldest slot.
	copy(e.targets, e.targets[1:])
	e.targets[len(e.targets)-1] = id
}

// btbState is a deep copy of a BTB: every entry's tag, LRU timestamp and
// target slots, plus the replacement clock that orders them.
type btbState struct {
	sets, ways, slots int
	clock             uint64
	entries           []btbEntry // targets slices deep-copied
}

func (t *btb) snapshot() btbState {
	s := btbState{sets: t.sets, ways: t.ways, slots: t.slots, clock: t.clock,
		entries: make([]btbEntry, len(t.entries))}
	copy(s.entries, t.entries)
	for i := range s.entries {
		if tg := s.entries[i].targets; tg != nil {
			s.entries[i].targets = append([]isa.BlockID(nil), tg...)
		}
	}
	return s
}

func (t *btb) restore(s btbState) error {
	if s.sets != t.sets || s.ways != t.ways || s.slots != t.slots {
		return fmt.Errorf("bpred: restore: BTB geometry %d sets/%d ways/%d slots does not match %d/%d/%d",
			s.sets, s.ways, s.slots, t.sets, t.ways, t.slots)
	}
	t.clock = s.clock
	copy(t.entries, s.entries)
	// Re-copy the target slices: the live entries must not alias the
	// snapshot (add mutates targets in place), and the snapshot must stay
	// reusable for further restores.
	for i := range t.entries {
		if tg := s.entries[i].targets; tg != nil {
			t.entries[i].targets = append(t.entries[i].targets[:0:0], tg...)
		}
	}
	return nil
}

// TwoLevel is the conventional two-level adaptive predictor (gshare
// organization): a global branch history register XOR-indexed with the
// branch PC into a table of two-bit counters, plus a BTB for taken targets
// and a return address stack.
type TwoLevel struct {
	cfg   Config
	bhr   uint32
	pht   []uint8
	btb   *btb
	ras   *ras
	stats Stats
}

// NewTwoLevel builds the conventional predictor.
func NewTwoLevel(cfg Config) *TwoLevel {
	cfg = cfg.withDefaults()
	return &TwoLevel{
		cfg: cfg,
		pht: make([]uint8, cfg.PHTEntries),
		btb: newBTB(cfg.BTBSets, cfg.BTBWays, 1),
		ras: newRAS(cfg.RASDepth),
	}
}

func (p *TwoLevel) phtIndex(pc, bhr uint32) int {
	mask := uint32(p.cfg.PHTEntries - 1)
	hist := bhr & (1<<uint(p.cfg.HistoryBits) - 1)
	return int((pc ^ hist) & mask)
}

// shiftConv advances a conventional global history register past block b:
// one taken bit per conditional branch, nothing otherwise. It is the single
// definition of the BHR evolution both the standalone predictor and the
// sweep Bank use — the evolution depends only on the committed outcome, so
// every history length sees the same register and HistoryBits merely masks
// it at indexing time.
func shiftConv(bhr uint32, b *isa.Block, taken bool) uint32 {
	return shiftConvTerm(bhr, b.Terminator(), taken)
}

// shiftConvTerm is shiftConv with the terminator already resolved (the Bank
// resolves it once per event for all lanes).
func shiftConvTerm(bhr uint32, t *isa.Op, taken bool) uint32 {
	if t != nil && t.Opcode == isa.BR {
		bhr <<= 1
		if taken {
			bhr |= 1
		}
	}
	return bhr
}

// Predict implements Predictor.
func (p *TwoLevel) Predict(b *isa.Block) isa.BlockID {
	return p.predictWith(b, p.bhr)
}

// predictWith is Predict against an explicit history register (the Bank
// supplies a shared one; the standalone path passes p.bhr).
func (p *TwoLevel) predictWith(b *isa.Block, bhr uint32) isa.BlockID {
	t := b.Terminator()
	if t == nil {
		return b.Succs[0]
	}
	switch t.Opcode {
	case isa.JMP:
		return b.Succs[0]
	case isa.CALL:
		p.ras.push(b.Cont)
		return b.Succs[0]
	case isa.RET:
		p.stats.RASReturns++
		if v, ok := p.ras.pop(); ok {
			return v
		}
		return isa.NoBlock
	case isa.JR:
		if e := p.btb.lookup(pcOf(b)); e != nil && len(e.targets) > 0 {
			return e.targets[0]
		}
		p.stats.BTBMisses++
		return isa.NoBlock
	case isa.HALT:
		return isa.NoBlock
	case isa.BR:
		p.stats.Lookups++
		if taken2(p.pht[p.phtIndex(pcOf(b), bhr)]) {
			// Predicted taken: the target must be in the BTB to redirect
			// fetch.
			if e := p.btb.lookup(pcOf(b)); e != nil && e.has(b.Succs[0]) {
				return b.Succs[0]
			}
			p.stats.BTBMisses++
			return isa.NoBlock
		}
		return b.Succs[b.TakenCount]
	}
	return isa.NoBlock
}

// Update implements Predictor.
func (p *TwoLevel) Update(b *isa.Block, actual isa.BlockID, taken bool, succIdx int) {
	p.updateWith(b, actual, taken, p.bhr)
	p.bhr = shiftConv(p.bhr, b, taken)
}

// updateWith is Update against an explicit history register; it trains the
// tables but does not advance the register (the caller shifts it once via
// shiftConv, whether it owns one register or shares it across a Bank).
func (p *TwoLevel) updateWith(b *isa.Block, actual isa.BlockID, taken bool, bhr uint32) {
	t := b.Terminator()
	if t == nil {
		return
	}
	switch t.Opcode {
	case isa.BR:
		idx := p.phtIndex(pcOf(b), bhr)
		pred := taken2(p.pht[idx])
		if pred == taken {
			// Target correctness is accounted by the caller comparing
			// block IDs; count direction hits here.
			p.stats.Correct++
		}
		p.pht[idx] = bump(p.pht[idx], taken)
		if taken {
			p.btb.insert(pcOf(b)).add(actual, 1)
		}
	case isa.JR:
		p.btb.insert(pcOf(b)).add(actual, 1)
	case isa.RET:
		// RAS trained at predict time.
	}
}

// stepTerm is predictWith immediately followed by updateWith against the
// same history register, with the terminator already resolved (the Bank
// resolves it once per event for every lane). All state it touches — PHT,
// BTB, RAS, stats — is private to this predictor, so fusing the two phases
// per lane is observationally identical to the Bank's former
// predict-all-then-update-all order while sharing the PHT index computation,
// the counter read, and the direction evaluation. The BTB probe sequence is
// kept call-for-call identical to the split phases: its clock drives LRU
// replacement, so eliding a probe would change victim choice and diverge
// from the standalone predictor.
func (p *TwoLevel) stepTerm(b *isa.Block, t *isa.Op, actual isa.BlockID, taken bool, bhr uint32) isa.BlockID {
	if t == nil {
		return b.Succs[0]
	}
	switch t.Opcode {
	case isa.JMP:
		return b.Succs[0]
	case isa.CALL:
		p.ras.push(b.Cont)
		return b.Succs[0]
	case isa.RET:
		p.stats.RASReturns++
		if v, ok := p.ras.pop(); ok {
			return v
		}
		return isa.NoBlock
	case isa.JR:
		pred := isa.NoBlock
		if e := p.btb.lookup(pcOf(b)); e != nil && len(e.targets) > 0 {
			pred = e.targets[0]
		} else {
			p.stats.BTBMisses++
		}
		p.btb.insert(pcOf(b)).add(actual, 1)
		return pred
	case isa.HALT:
		return isa.NoBlock
	case isa.BR:
		p.stats.Lookups++
		idx := p.phtIndex(pcOf(b), bhr)
		ctr := p.pht[idx]
		dir := taken2(ctr)
		pred := isa.NoBlock
		if dir {
			// Predicted taken: the target must be in the BTB to redirect
			// fetch.
			if e := p.btb.lookup(pcOf(b)); e != nil && e.has(b.Succs[0]) {
				pred = b.Succs[0]
			} else {
				p.stats.BTBMisses++
			}
		} else {
			pred = b.Succs[b.TakenCount]
		}
		if dir == taken {
			p.stats.Correct++
		}
		p.pht[idx] = bump(ctr, taken)
		if taken {
			p.btb.insert(pcOf(b)).add(actual, 1)
		}
		return pred
	}
	return isa.NoBlock
}

// Stats implements Predictor.
func (p *TwoLevel) Stats() Stats { return p.stats }

// twoLevelState is a complete TwoLevel checkpoint.
type twoLevelState struct {
	bhr   uint32
	pht   []uint8
	btb   btbState
	ras   rasState
	stats Stats
}

func (*twoLevelState) stateKind() string { return "twolevel" }

// Snapshot implements Predictor.
func (p *TwoLevel) Snapshot() State {
	s := &twoLevelState{bhr: p.bhr, pht: make([]uint8, len(p.pht)),
		btb: p.btb.snapshot(), ras: p.ras.snapshot(), stats: p.stats}
	copy(s.pht, p.pht)
	return s
}

// Restore implements Predictor.
func (p *TwoLevel) Restore(st State) error {
	s, ok := st.(*twoLevelState)
	if !ok {
		return fmt.Errorf("bpred: restore: %s snapshot into a twolevel predictor", st.stateKind())
	}
	if len(s.pht) != len(p.pht) {
		return fmt.Errorf("bpred: restore: PHT of %d entries does not match %d", len(s.pht), len(p.pht))
	}
	if err := p.btb.restore(s.btb); err != nil {
		return err
	}
	if err := p.ras.restore(s.ras); err != nil {
		return err
	}
	p.bhr = s.bhr
	copy(p.pht, s.pht)
	p.stats = s.stats
	return nil
}
