package bpred

import (
	"fmt"

	"bsisa/internal/isa"
)

// Bank steps a whole grid of predictor variants of one kind in lockstep over
// a single committed block stream. It is the predictor half of the unified
// sweep engine (uarch.Sweep): predictor state depends only on the
// committed stream — never on timing — so one walk of the trace can train
// every variant and emit each lane's prediction for every control event.
//
// The bank shares the branch history register across lanes: the BHR's
// evolution is fixed by the committed outcomes (shiftConv/shiftBSA), and a
// lane's HistoryBits only masks the register at PHT-indexing time, so one
// shift per event serves every history length. Per-lane state (PHT, BTB,
// RAS, stats) lives in ordinary TwoLevel/BSA predictors driven through
// their external-BHR predictWith/updateWith entry points, which keeps the
// bank's per-event work allocation-free once the BTBs warm up
// (TestBankStepAllocs pins this).
type Bank struct {
	bhr  uint32
	conv []*TwoLevel // exactly one of conv/bsa is populated
	bsa  []*BSA
}

// NewBank builds one predictor lane per configuration, of the kind matching
// the program's ISA (the same rule uarch.New applies).
func NewBank(kind isa.Kind, cfgs []Config) *Bank {
	bk := &Bank{}
	if kind == isa.BlockStructured {
		bk.bsa = make([]*BSA, len(cfgs))
		for i, cfg := range cfgs {
			bk.bsa[i] = NewBSA(cfg)
		}
		return bk
	}
	bk.conv = make([]*TwoLevel, len(cfgs))
	for i, cfg := range cfgs {
		bk.conv[i] = NewTwoLevel(cfg)
	}
	return bk
}

// Len returns the number of lanes.
func (bk *Bank) Len() int {
	if bk.bsa != nil {
		return len(bk.bsa)
	}
	return len(bk.conv)
}

// Step consumes one control event: every lane predicts the successor of b
// (out[i] receives lane i's prediction; out must hold Len() entries), every
// lane trains on the architectural outcome, and the shared history register
// advances once. Call it exactly where a live simulation would call
// Predict+Update — for each committed block with a real successor.
//
// Each lane runs its fused stepTerm (predict immediately followed by update
// against the same shared register). That per-lane fusion is exact: lanes
// never touch each other's tables, and the shared register is read-only
// until the single shift below, so lane i's update cannot influence lane
// j's prediction in either ordering. Events that no lane's tables react to
// — a fallthrough or unconditional jump for the conventional predictor, the
// same with a single successor for the BSA one — short-circuit to the known
// successor without entering the lanes at all (no stats change, and the
// history shift is a no-op for those terminators).
func (bk *Bank) Step(b *isa.Block, actual isa.BlockID, taken bool, succIdx int, out []isa.BlockID) {
	// The terminator is resolved once here and passed down: every lane's
	// predict and update needs it, and it is a pure function of the block.
	t := b.Terminator()
	if bk.bsa != nil {
		if (t == nil || t.Opcode == isa.JMP) && len(b.Succs) == 1 {
			s := b.Succs[0]
			for i := range out[:len(bk.bsa)] {
				out[i] = s
			}
			return
		}
		for i, p := range bk.bsa {
			out[i] = p.stepTerm(b, t, actual, taken, bk.bhr)
		}
		bk.bhr = shiftBSATerm(bk.bhr, b, t, succIdx)
		return
	}
	if t == nil || t.Opcode == isa.JMP {
		s := b.Succs[0]
		for i := range out[:len(bk.conv)] {
			out[i] = s
		}
		return
	}
	for i, p := range bk.conv {
		out[i] = p.stepTerm(b, t, actual, taken, bk.bhr)
	}
	bk.bhr = shiftConvTerm(bk.bhr, t, taken)
}

// LaneStats reports lane i's prediction traffic.
func (bk *Bank) LaneStats(i int) Stats {
	if bk.bsa != nil {
		return bk.bsa[i].Stats()
	}
	return bk.conv[i].Stats()
}

// bankState is a complete Bank checkpoint: the shared history register plus
// one per-lane predictor snapshot.
type bankState struct {
	bhr   uint32
	lanes []State
	bsa   bool
}

func (*bankState) stateKind() string { return "bank" }

// Snapshot captures the bank's complete state (shared BHR and every lane).
// Like Predictor.Snapshot, the result shares nothing with the live bank.
func (bk *Bank) Snapshot() State {
	s := &bankState{bhr: bk.bhr, bsa: bk.bsa != nil, lanes: make([]State, bk.Len())}
	for i := range s.lanes {
		if bk.bsa != nil {
			s.lanes[i] = bk.bsa[i].Snapshot()
		} else {
			s.lanes[i] = bk.conv[i].Snapshot()
		}
	}
	return s
}

// Restore rewinds the bank to a previously captured snapshot. The snapshot
// must come from a bank of the same kind, lane count and per-lane geometry.
func (bk *Bank) Restore(st State) error {
	s, ok := st.(*bankState)
	if !ok {
		return fmt.Errorf("bpred: restore: %s snapshot into a bank", st.stateKind())
	}
	if s.bsa != (bk.bsa != nil) || len(s.lanes) != bk.Len() {
		return fmt.Errorf("bpred: restore: bank shape (bsa=%v, %d lanes) does not match (bsa=%v, %d lanes)",
			s.bsa, len(s.lanes), bk.bsa != nil, bk.Len())
	}
	for i, ls := range s.lanes {
		var err error
		if bk.bsa != nil {
			err = bk.bsa[i].Restore(ls)
		} else {
			err = bk.conv[i].Restore(ls)
		}
		if err != nil {
			return fmt.Errorf("bpred: restore: bank lane %d: %w", i, err)
		}
	}
	bk.bhr = s.bhr
	return nil
}
