package bpred

import (
	"math/rand"
	"testing"

	"bsisa/internal/isa"
)

// predStream is a reproducible random training stream over a small block
// working set: conditional blocks for the conventional predictor, trap
// blocks with variant-group successors for the BSA predictor.
type predStream struct {
	rng    *rand.Rand
	blocks []*isa.Block
}

func newPredStream(seed int64, bsa bool) *predStream {
	s := &predStream{rng: rand.New(rand.NewSource(seed))}
	for i := 0; i < 8; i++ {
		addr := uint32(0x1000 + i*0x40)
		if bsa {
			base := isa.BlockID(10 * (i + 1))
			s.blocks = append(s.blocks, trapBlock(addr,
				[]isa.BlockID{base, base + 1, base + 2},
				[]isa.BlockID{base + 3, base + 4}))
		} else {
			b := condBlock(addr)
			b.ID = isa.BlockID(100 + i)
			b.Succs = []isa.BlockID{isa.BlockID(2 * i), isa.BlockID(2*i + 1)}
			s.blocks = append(s.blocks, b)
		}
	}
	return s
}

// step picks one random training event: a block, a committed successor, and
// the direction/index pair Update wants.
func (s *predStream) step() (b *isa.Block, actual isa.BlockID, taken bool, succIdx int) {
	b = s.blocks[s.rng.Intn(len(s.blocks))]
	succIdx = s.rng.Intn(len(b.Succs))
	actual = b.Succs[succIdx]
	taken = succIdx < b.TakenCount
	return b, actual, taken, succIdx
}

// drive runs n Predict+Update steps and returns the prediction sequence.
func drive(p Predictor, s *predStream, n int) []isa.BlockID {
	out := make([]isa.BlockID, n)
	for i := range out {
		b, actual, taken, succIdx := s.step()
		out[i] = p.Predict(b)
		p.Update(b, actual, taken, succIdx)
	}
	return out
}

// checkRoundTrip is the snapshot property: capture mid-stream, observe the
// suffix behavior, let the live predictor diverge on garbage, restore, and
// replay the same suffix — predictions and final stats must be identical.
func checkRoundTrip(t *testing.T, p Predictor, bsa bool) {
	t.Helper()
	warm := newPredStream(1, bsa)
	drive(p, warm, 500)

	st := p.Snapshot()
	suffix := newPredStream(2, bsa)
	want := drive(p, suffix, 300)
	wantStats := p.Stats()

	// Diverge: different stream, so tables, history, and counters all move.
	drive(p, newPredStream(3, bsa), 400)

	if err := p.Restore(st); err != nil {
		t.Fatalf("restore: %v", err)
	}
	suffix = newPredStream(2, bsa)
	got := drive(p, suffix, 300)
	gotStats := p.Stats()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("prediction %d after restore: %d, want %d", i, got[i], want[i])
		}
	}
	if gotStats != wantStats {
		t.Fatalf("stats after restored replay %+v, want %+v", gotStats, wantStats)
	}

	// The snapshot is reusable: a second restore rewinds again.
	if err := p.Restore(st); err != nil {
		t.Fatalf("second restore: %v", err)
	}
	if got := drive(p, newPredStream(2, bsa), 300); got[len(got)-1] != want[len(want)-1] {
		t.Fatal("snapshot not reusable for a second restore")
	}
}

func TestTwoLevelSnapshotRoundTrip(t *testing.T) {
	checkRoundTrip(t, NewTwoLevel(Config{HistoryBits: 6, PHTEntries: 256, BTBSets: 16, BTBWays: 2, RASDepth: 4}), false)
}

func TestBSASnapshotRoundTrip(t *testing.T) {
	checkRoundTrip(t, NewBSA(Config{HistoryBits: 6, PHTEntries: 256, BTBSets: 16, BTBWays: 2, RASDepth: 4}), true)
}

// TestBankSnapshotRoundTrip runs the property over the interleaved Bank:
// shared history plus per-lane predictors must all rewind together.
func TestBankSnapshotRoundTrip(t *testing.T) {
	for _, kind := range []isa.Kind{isa.Conventional, isa.BlockStructured} {
		cfgs := []Config{
			{HistoryBits: 6, PHTEntries: 256, BTBSets: 16, BTBWays: 2, RASDepth: 4},
			{HistoryBits: 4, PHTEntries: 128, BTBSets: 8, BTBWays: 2, RASDepth: 4},
		}
		bk := NewBank(kind, cfgs)
		bsa := kind == isa.BlockStructured
		out := make([]isa.BlockID, bk.Len())
		driveBank := func(s *predStream, n int) []isa.BlockID {
			var preds []isa.BlockID
			for i := 0; i < n; i++ {
				b, actual, taken, succIdx := s.step()
				bk.Step(b, actual, taken, succIdx, out)
				preds = append(preds, out...)
			}
			return preds
		}
		driveBank(newPredStream(1, bsa), 300)
		st := bk.Snapshot()
		want := driveBank(newPredStream(2, bsa), 200)
		driveBank(newPredStream(3, bsa), 250)
		if err := bk.Restore(st); err != nil {
			t.Fatalf("%v bank restore: %v", kind, err)
		}
		got := driveBank(newPredStream(2, bsa), 200)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v bank prediction %d after restore: %d, want %d", kind, i, got[i], want[i])
			}
		}
	}
}

// TestSnapshotRestoreMismatch requires Restore to reject snapshots from a
// different predictor kind or geometry instead of silently reinterpreting
// tables.
func TestSnapshotRestoreMismatch(t *testing.T) {
	small := Config{HistoryBits: 6, PHTEntries: 256, BTBSets: 16, BTBWays: 2, RASDepth: 4}
	big := Config{HistoryBits: 6, PHTEntries: 512, BTBSets: 16, BTBWays: 2, RASDepth: 4}

	tl := NewTwoLevel(small)
	bsa := NewBSA(small)
	bank := NewBank(isa.Conventional, []Config{small})

	cases := []struct {
		name string
		err  error
	}{
		{"twolevel state into bsa", bsa.Restore(tl.Snapshot())},
		{"bsa state into twolevel", tl.Restore(bsa.Snapshot())},
		{"bank state into twolevel", tl.Restore(bank.Snapshot())},
		{"twolevel state into bank", bank.Restore(tl.Snapshot())},
		{"pht size mismatch", NewTwoLevel(big).Restore(tl.Snapshot())},
		// BSA divides PHT entries by four with a 1024-entry floor, so the
		// mismatching geometries must sit above the floor.
		{"bsa pht size mismatch", NewBSA(Config{PHTEntries: 32768}).Restore(NewBSA(Config{PHTEntries: 8192}).Snapshot())},
		{"bank lane count mismatch", NewBank(isa.Conventional, []Config{small, small}).Restore(bank.Snapshot())},
		{"bank kind mismatch", NewBank(isa.BlockStructured, []Config{small}).Restore(bank.Snapshot())},
		{"ras depth mismatch", func() error {
			other := small
			other.RASDepth = 8
			return NewTwoLevel(other).Restore(tl.Snapshot())
		}()},
	}
	for _, tc := range cases {
		if tc.err == nil {
			t.Errorf("%s: restore accepted, want error", tc.name)
		}
	}
}
