// Package bpred implements the branch predictors of the study:
//
//   - TwoLevel: a two-level adaptive predictor (Yeh & Patt) in its
//     global-history gshare organization with a tagged set-associative BTB
//     and a return address stack, used by the conventional-ISA processor;
//   - BSA: the paper's §4.3 modification for block-structured ISAs — BTB
//     entries hold up to eight successor targets (the trap's two explicit
//     targets stored on first encounter, the rest filled in as fault
//     mispredictions reveal them), PHT entries hold three two-bit counters
//     producing a three-bit successor selection, and the branch history
//     register is shifted by the variable number of history bits the trap
//     operation specifies (the block's HistBits).
//
// Both predictors expose the same interface to the timing model: given a
// fetched block, predict the next block; after the actual successor is
// known, train.
package bpred

import (
	"errors"
	"fmt"

	"bsisa/internal/isa"
)

// Predictor is the frontend-prediction interface the timing model consumes.
type Predictor interface {
	// Predict returns the predicted block to fetch after b, or isa.NoBlock
	// when the frontend has no usable target (treated as a misfetch).
	Predict(b *isa.Block) isa.BlockID
	// Update trains the predictor with the architectural outcome: the
	// committed successor, the trap/branch direction, and the successor's
	// index in b.Succs (-1 for return/indirect transfers).
	Update(b *isa.Block, actual isa.BlockID, taken bool, succIdx int)
	// Stats reports prediction traffic.
	Stats() Stats
	// Snapshot captures the predictor's complete state — history register,
	// pattern tables, BTB contents and LRU clock, return address stack, and
	// traffic counters. The returned value shares nothing with the live
	// predictor, so one snapshot can seed any number of Restores.
	Snapshot() State
	// Restore rewinds the predictor to a previously captured snapshot. The
	// snapshot must come from a predictor of the same kind and geometry.
	Restore(State) error
}

// State is an opaque predictor checkpoint produced by Predictor.Snapshot.
// Restoring it into a same-kind, same-geometry predictor reproduces the
// exact prediction and training behavior the source would have shown from
// the capture point on — the checkpoint primitive behind the
// segment-parallel replay engine (uarch.ReplayTraceSegmented).
type State interface {
	// stateKind names the concrete predictor the snapshot came from; it keys
	// the type check in Restore and keeps the interface closed to this
	// package (checkpoints are not an extension point).
	stateKind() string
}

// rasState is a deep copy of a return address stack.
type rasState struct {
	stack []isa.BlockID
	top   int
	n     int
}

func (r *ras) snapshot() rasState {
	s := rasState{stack: make([]isa.BlockID, len(r.stack)), top: r.top, n: r.n}
	copy(s.stack, r.stack)
	return s
}

func (r *ras) restore(s rasState) error {
	if len(s.stack) != len(r.stack) {
		return fmt.Errorf("bpred: restore: RAS depth %d does not match %d", len(s.stack), len(r.stack))
	}
	copy(r.stack, s.stack)
	r.top = s.top
	r.n = s.n
	return nil
}

// Stats counts predictor traffic. Misprediction *consequences* are measured
// by the timing model; these are raw hit/miss counts.
type Stats struct {
	Lookups    int64 // blocks with a real multi-way choice
	Correct    int64
	BTBMisses  int64 // predictions that could not name a fetch target
	RASReturns int64
	RASWrong   int64
}

// Config sizes the predictor tables. Zero fields take scaled defaults chosen
// to sit in the same table-pressure regime as the paper's configuration at
// this reproduction's workload scale.
type Config struct {
	HistoryBits int // global history length (default 8)
	PHTEntries  int // pattern history table entries, power of two (default 32768)
	BTBSets     int // BTB sets, power of two (default 512)
	BTBWays     int // BTB associativity (default 4)
	RASDepth    int // return address stack depth (default 16)
}

// ErrBadConfig is wrapped by every Config.Validate failure, so callers can
// classify predictor-configuration errors with errors.Is without matching
// message text — the same contract as uarch.ErrBadConfig and the cache
// package's validation.
var ErrBadConfig = errors.New("bpred: invalid configuration")

// bhrWidth is the branch history register width in bits (the BHR is a
// uint32). HistoryBits beyond it cannot contribute to the PHT index.
const bhrWidth = 32

// Validate rejects table geometries the predictors would silently
// mis-simulate: PHT entry counts and BTB set counts that are not powers of
// two (both are index-masked), non-positive BTB associativity or RAS depth,
// and history lengths outside the BHR's width. Defaults are applied first,
// so the zero Config validates.
func (c Config) Validate() error {
	d := c.withDefaults()
	switch {
	case d.HistoryBits < 0 || d.HistoryBits > bhrWidth:
		return fmt.Errorf("%w: history of %d bits outside the %d-bit BHR", ErrBadConfig, d.HistoryBits, bhrWidth)
	case d.PHTEntries < 1 || d.PHTEntries&(d.PHTEntries-1) != 0:
		return fmt.Errorf("%w: PHT entries %d is not a positive power of two", ErrBadConfig, d.PHTEntries)
	case d.BTBSets < 1 || d.BTBSets&(d.BTBSets-1) != 0:
		return fmt.Errorf("%w: BTB sets %d is not a positive power of two", ErrBadConfig, d.BTBSets)
	case d.BTBWays < 1:
		return fmt.Errorf("%w: BTB ways %d < 1", ErrBadConfig, d.BTBWays)
	case d.RASDepth < 1:
		return fmt.Errorf("%w: RAS depth %d < 1", ErrBadConfig, d.RASDepth)
	}
	return nil
}

func (c Config) withDefaults() Config {
	if c.HistoryBits == 0 {
		c.HistoryBits = 8
	}
	if c.PHTEntries == 0 {
		c.PHTEntries = 32768
	}
	if c.BTBSets == 0 {
		c.BTBSets = 512
	}
	if c.BTBWays == 0 {
		c.BTBWays = 4
	}
	if c.RASDepth == 0 {
		c.RASDepth = 16
	}
	return c
}

// ras is a circular return address stack.
type ras struct {
	stack []isa.BlockID
	top   int
	n     int
}

func newRAS(depth int) *ras {
	return &ras{stack: make([]isa.BlockID, depth)}
}

func (r *ras) push(v isa.BlockID) {
	r.top = (r.top + 1) % len(r.stack)
	r.stack[r.top] = v
	if r.n < len(r.stack) {
		r.n++
	}
}

func (r *ras) pop() (isa.BlockID, bool) {
	if r.n == 0 {
		return isa.NoBlock, false
	}
	v := r.stack[r.top]
	r.top = (r.top - 1 + len(r.stack)) % len(r.stack)
	r.n--
	return v, true
}

// counter update helpers for 2-bit saturating counters.
func bump(c uint8, up bool) uint8 {
	if up {
		if c < 3 {
			return c + 1
		}
		return 3
	}
	if c > 0 {
		return c - 1
	}
	return 0
}

func taken2(c uint8) bool { return c >= 2 }

// pcOf hashes a block to a predictor PC. Blocks are addressed by their
// layout address.
func pcOf(b *isa.Block) uint32 { return b.Addr >> 2 }
