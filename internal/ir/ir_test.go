package ir

import (
	"strings"
	"testing"
)

// buildDiamond builds:
//
//	b0: v0 = const 1; br v0 -> b1, b2
//	b1: v1 = const 10; jmp b3
//	b2: v2 = const 20; jmp b3
//	b3: ret
func buildDiamond() *Func {
	f := &Func{Name: "diamond"}
	b0, b1, b2, b3 := f.NewBlock(), f.NewBlock(), f.NewBlock(), f.NewBlock()
	f.Entry = b0
	v0, v1, v2 := f.NewReg(), f.NewReg(), f.NewReg()
	b0.Instrs = []Instr{
		{Op: Const, Dst: v0, Imm: 1, A: NoReg, B: NoReg},
		{Op: Br, A: v0, Dst: NoReg, B: NoReg},
	}
	b0.Succs = []*Block{b1, b2}
	b1.Instrs = []Instr{
		{Op: Const, Dst: v1, Imm: 10, A: NoReg, B: NoReg},
		{Op: Jmp, Dst: NoReg, A: NoReg, B: NoReg},
	}
	b1.Succs = []*Block{b3}
	b2.Instrs = []Instr{
		{Op: Const, Dst: v2, Imm: 20, A: NoReg, B: NoReg},
		{Op: Jmp, Dst: NoReg, A: NoReg, B: NoReg},
	}
	b2.Succs = []*Block{b3}
	b3.Instrs = []Instr{{Op: Ret, A: NoReg, Dst: NoReg, B: NoReg}}
	return f
}

// buildLoop builds:
//
//	b0(entry) -> b1(header) ; b1 -> b2(body), b3(exit) ; b2 -> b1
func buildLoop() *Func {
	f := &Func{Name: "loop"}
	b0, b1, b2, b3 := f.NewBlock(), f.NewBlock(), f.NewBlock(), f.NewBlock()
	f.Entry = b0
	c := f.NewReg()
	b0.Instrs = []Instr{{Op: Jmp, Dst: NoReg, A: NoReg, B: NoReg}}
	b0.Succs = []*Block{b1}
	b1.Instrs = []Instr{
		{Op: Const, Dst: c, Imm: 1, A: NoReg, B: NoReg},
		{Op: Br, A: c, Dst: NoReg, B: NoReg},
	}
	b1.Succs = []*Block{b2, b3}
	b2.Instrs = []Instr{{Op: Jmp, Dst: NoReg, A: NoReg, B: NoReg}}
	b2.Succs = []*Block{b1}
	b3.Instrs = []Instr{{Op: Ret, A: NoReg, Dst: NoReg, B: NoReg}}
	return f
}

func TestReversePostorder(t *testing.T) {
	f := buildDiamond()
	rpo := f.ReversePostorder()
	if len(rpo) != 4 {
		t.Fatalf("rpo has %d blocks, want 4", len(rpo))
	}
	if rpo[0] != f.Entry {
		t.Error("rpo must start at entry")
	}
	pos := map[*Block]int{}
	for i, b := range rpo {
		pos[b] = i
	}
	// In a DAG, every edge goes forward in RPO.
	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			if s != b && pos[s] <= pos[b] && !(b == f.Blocks[2] && s == f.Blocks[1]) {
				// diamond is a DAG: all edges forward
				if pos[s] <= pos[b] {
					t.Errorf("edge b%d->b%d not forward in RPO", b.ID, s.ID)
				}
			}
		}
	}
}

func TestReversePostorderOmitsUnreachable(t *testing.T) {
	f := buildDiamond()
	dead := f.NewBlock()
	dead.Instrs = []Instr{{Op: Ret, A: NoReg}}
	rpo := f.ReversePostorder()
	for _, b := range rpo {
		if b == dead {
			t.Error("unreachable block in RPO")
		}
	}
}

func TestDominatorsDiamond(t *testing.T) {
	f := buildDiamond()
	idom := f.Dominators()
	b0, b1, b2, b3 := f.Blocks[0], f.Blocks[1], f.Blocks[2], f.Blocks[3]
	if idom[b1] != b0 || idom[b2] != b0 {
		t.Error("b0 should immediately dominate b1 and b2")
	}
	if idom[b3] != b0 {
		t.Errorf("idom(b3) = b%d, want b0", idom[b3].ID)
	}
	if !Dominates(idom, b0, b3) {
		t.Error("b0 should dominate b3")
	}
	if Dominates(idom, b1, b3) {
		t.Error("b1 should not dominate b3")
	}
}

func TestBackEdges(t *testing.T) {
	f := buildLoop()
	edges := f.BackEdges()
	if len(edges) != 1 {
		t.Fatalf("found %d back edges, want 1", len(edges))
	}
	if edges[0].From != f.Blocks[2] || edges[0].To != f.Blocks[1] {
		t.Errorf("back edge b%d->b%d, want b2->b1", edges[0].From.ID, edges[0].To.ID)
	}

	if got := buildDiamond().BackEdges(); len(got) != 0 {
		t.Errorf("diamond has %d back edges, want 0", len(got))
	}
}

func TestLivenessAcrossBlocks(t *testing.T) {
	// b0: v0 = const 7; jmp b1
	// b1: v1 = add v0, v0; ret v1
	f := &Func{Name: "live"}
	b0, b1 := f.NewBlock(), f.NewBlock()
	f.Entry = b0
	v0, v1 := f.NewReg(), f.NewReg()
	b0.Instrs = []Instr{
		{Op: Const, Dst: v0, Imm: 7, A: NoReg, B: NoReg},
		{Op: Jmp, Dst: NoReg, A: NoReg, B: NoReg},
	}
	b0.Succs = []*Block{b1}
	b1.Instrs = []Instr{
		{Op: Add, Dst: v1, A: v0, B: v0},
		{Op: Ret, A: v1, Dst: NoReg, B: NoReg},
	}

	ls := f.Liveness()
	if !ls.LiveOut[b0][v0] {
		t.Error("v0 should be live out of b0")
	}
	if !ls.LiveIn[b1][v0] {
		t.Error("v0 should be live into b1")
	}
	if ls.LiveIn[b0][v0] {
		t.Error("v0 should not be live into b0 (defined there)")
	}
	if ls.LiveOut[b1][v1] {
		t.Error("v1 should not be live out of b1")
	}
}

func TestLivenessLoop(t *testing.T) {
	// v live around the loop: defined before, used in body.
	// b0: v = const 3; jmp b1
	// b1: c = const 1; br c -> b2, b3
	// b2: u = add v, v; jmp b1
	// b3: ret v
	f := &Func{Name: "liveloop"}
	b0, b1, b2, b3 := f.NewBlock(), f.NewBlock(), f.NewBlock(), f.NewBlock()
	f.Entry = b0
	v, c, u := f.NewReg(), f.NewReg(), f.NewReg()
	b0.Instrs = []Instr{{Op: Const, Dst: v, Imm: 3, A: NoReg, B: NoReg}, {Op: Jmp, A: NoReg, Dst: NoReg, B: NoReg}}
	b0.Succs = []*Block{b1}
	b1.Instrs = []Instr{{Op: Const, Dst: c, Imm: 1, A: NoReg, B: NoReg}, {Op: Br, A: c, Dst: NoReg, B: NoReg}}
	b1.Succs = []*Block{b2, b3}
	b2.Instrs = []Instr{{Op: Add, Dst: u, A: v, B: v}, {Op: Jmp, A: NoReg, Dst: NoReg, B: NoReg}}
	b2.Succs = []*Block{b1}
	b3.Instrs = []Instr{{Op: Ret, A: v, Dst: NoReg, B: NoReg}}

	ls := f.Liveness()
	for _, b := range []*Block{b1, b2} {
		if !ls.LiveIn[b][v] {
			t.Errorf("v should be live into b%d", b.ID)
		}
	}
	if !ls.LiveOut[b2][v] {
		t.Error("v should be live out of the latch")
	}
	_ = u
}

func TestInstrUsesDef(t *testing.T) {
	cases := []struct {
		in    Instr
		uses  int
		hasDe bool
	}{
		{Instr{Op: Add, Dst: 1, A: 2, B: 3}, 2, true},
		{Instr{Op: Store, A: 2, B: 3, Dst: NoReg}, 2, false},
		{Instr{Op: Load, Dst: 1, A: 2, B: NoReg}, 1, true},
		{Instr{Op: Call, Dst: 1, Args: []Reg{2, 3, 4}, A: NoReg, B: NoReg}, 3, true},
		{Instr{Op: Ret, A: NoReg, Dst: NoReg, B: NoReg}, 0, false},
		{Instr{Op: Br, A: 5, Dst: NoReg, B: NoReg}, 1, false},
		{Instr{Op: Const, Dst: 1, Imm: 9, A: NoReg, B: NoReg}, 0, true},
	}
	for _, c := range cases {
		if got := len(c.in.Uses()); got != c.uses {
			t.Errorf("%s Uses = %d, want %d", c.in.String(), got, c.uses)
		}
		if got := c.in.Def() != NoReg; got != c.hasDe {
			t.Errorf("%s Def presence = %v, want %v", c.in.String(), got, c.hasDe)
		}
	}
}

func TestModuleValidate(t *testing.T) {
	m := &Module{Name: "m", Funcs: []*Func{buildDiamond()}}
	m.Funcs[0].Renumber()
	if err := m.Validate(); err != nil {
		t.Fatalf("valid module rejected: %v", err)
	}

	// Missing terminator.
	bad := buildDiamond()
	bad.Blocks[3].Instrs = nil
	m2 := &Module{Funcs: []*Func{bad}}
	if err := m2.Validate(); err == nil {
		t.Error("Validate should reject missing terminator")
	}

	// Br with one successor.
	bad2 := buildDiamond()
	bad2.Blocks[0].Succs = bad2.Blocks[0].Succs[:1]
	m3 := &Module{Funcs: []*Func{bad2}}
	if err := m3.Validate(); err == nil {
		t.Error("Validate should reject br with one successor")
	}
}

func TestStringRendering(t *testing.T) {
	f := buildDiamond()
	s := f.String()
	for _, want := range []string{"func diamond", "b0:", "br", "const 10", "ret"} {
		if !strings.Contains(s, want) {
			t.Errorf("function dump missing %q:\n%s", want, s)
		}
	}
	in := Instr{Op: Store, A: 1, B: 2, Imm: 16, Dst: NoReg}
	if got := in.String(); got != "store [v1+16] = v2" {
		t.Errorf("store render = %q", got)
	}
}
