package ir

// ReversePostorder returns the blocks reachable from the entry in reverse
// postorder of a depth-first search. Unreachable blocks are omitted.
func (f *Func) ReversePostorder() []*Block {
	var post []*Block
	visited := make(map[*Block]bool, len(f.Blocks))
	var dfs func(*Block)
	dfs = func(b *Block) {
		visited[b] = true
		for _, s := range b.Succs {
			if !visited[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(f.Entry)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// Dominators computes the immediate dominator of every reachable block using
// the Cooper/Harvey/Kennedy iterative algorithm. The entry's idom is itself.
func (f *Func) Dominators() map[*Block]*Block {
	rpo := f.ReversePostorder()
	index := make(map[*Block]int, len(rpo))
	for i, b := range rpo {
		index[b] = i
	}
	idom := make(map[*Block]*Block, len(rpo))
	idom[f.Entry] = f.Entry
	f.ComputePreds()

	intersect := func(a, b *Block) *Block {
		for a != b {
			for index[a] > index[b] {
				a = idom[a]
			}
			for index[b] > index[a] {
				b = idom[b]
			}
		}
		return a
	}

	changed := true
	for changed {
		changed = false
		for _, b := range rpo {
			if b == f.Entry {
				continue
			}
			var newIdom *Block
			for _, p := range b.Preds {
				if idom[p] == nil {
					continue // unreachable or not yet processed
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != nil && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// Dominates reports whether a dominates b given an idom map.
func Dominates(idom map[*Block]*Block, a, b *Block) bool {
	for {
		if a == b {
			return true
		}
		next := idom[b]
		if next == nil || next == b {
			return a == b
		}
		b = next
	}
}

// BackEdge is a CFG edge whose head dominates its tail: the defining edge of
// a natural loop.
type BackEdge struct {
	From *Block // loop latch
	To   *Block // loop header
}

// BackEdges returns the natural-loop back edges of the function. The block
// enlargement optimization uses this to avoid combining separate loop
// iterations (paper rule 4).
func (f *Func) BackEdges() []BackEdge {
	idom := f.Dominators()
	var edges []BackEdge
	for _, b := range f.ReversePostorder() {
		for _, s := range b.Succs {
			if Dominates(idom, s, b) {
				edges = append(edges, BackEdge{From: b, To: s})
			}
		}
	}
	return edges
}

// LiveSets holds per-block liveness: LiveIn[b] is the set of virtual
// registers live on entry to b; LiveOut[b] on exit.
type LiveSets struct {
	LiveIn  map[*Block]map[Reg]bool
	LiveOut map[*Block]map[Reg]bool
}

// Liveness computes live-in/live-out sets by iterative backward dataflow.
func (f *Func) Liveness() *LiveSets {
	f.ComputePreds()
	ls := &LiveSets{
		LiveIn:  make(map[*Block]map[Reg]bool, len(f.Blocks)),
		LiveOut: make(map[*Block]map[Reg]bool, len(f.Blocks)),
	}
	use := make(map[*Block]map[Reg]bool, len(f.Blocks))
	def := make(map[*Block]map[Reg]bool, len(f.Blocks))
	for _, b := range f.Blocks {
		u, d := map[Reg]bool{}, map[Reg]bool{}
		for i := range b.Instrs {
			in := &b.Instrs[i]
			for _, r := range in.Uses() {
				if !d[r] {
					u[r] = true
				}
			}
			if dr := in.Def(); dr != NoReg {
				d[dr] = true
			}
		}
		use[b], def[b] = u, d
		ls.LiveIn[b] = map[Reg]bool{}
		ls.LiveOut[b] = map[Reg]bool{}
	}
	changed := true
	for changed {
		changed = false
		// Backward order converges faster; any order is correct.
		for i := len(f.Blocks) - 1; i >= 0; i-- {
			b := f.Blocks[i]
			out := ls.LiveOut[b]
			for _, s := range b.Succs {
				for r := range ls.LiveIn[s] {
					if !out[r] {
						out[r] = true
						changed = true
					}
				}
			}
			in := ls.LiveIn[b]
			for r := range use[b] {
				if !in[r] {
					in[r] = true
					changed = true
				}
			}
			for r := range out {
				if !def[b][r] && !in[r] {
					in[r] = true
					changed = true
				}
			}
		}
	}
	return ls
}
