// Package ir defines the compiler's intermediate representation: a
// three-address, virtual-register IR organized as a control flow graph of
// basic blocks. The MiniC front end lowers into this IR, the optimizer
// rewrites it, and both the conventional-ISA and block-structured-ISA
// backends consume it. The package also provides the CFG analyses the
// compiler and the block enlargement pass need: reverse postorder,
// dominators, natural-loop back edges, and liveness.
package ir

import (
	"fmt"
	"strings"
)

// Reg is a virtual register. The supply is unbounded; register allocation
// maps virtual registers onto the 32 architectural registers.
type Reg int32

// NoReg marks an absent register operand.
const NoReg Reg = -1

func (r Reg) String() string {
	if r == NoReg {
		return "_"
	}
	return fmt.Sprintf("v%d", int32(r))
}

// Opc is an IR operation code.
type Opc uint8

// IR operation codes. Binary arithmetic takes Dst, A, B. Comparison results
// are 0 or 1.
const (
	Nop Opc = iota

	Const // Dst = Imm
	Copy  // Dst = A

	Add
	Sub
	Mul
	Div
	Rem
	And
	Or
	Xor
	Shl
	Shr // arithmetic shift right (MiniC ints are signed)

	CmpEQ
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE

	Neg // Dst = -A
	Not // Dst = !A (logical: 1 if A == 0 else 0)

	// CmovNZ is a conditional move: Dst = A when B != 0, else Dst keeps its
	// prior value (Dst is also a source). Created by the if-conversion
	// pass; never produced by lowering.
	CmovNZ

	// Memory. Globals are addressed by symbol + word index; locals by frame
	// slot. Addr computes the byte address of an element.
	GlobalAddr // Dst = &global(Sym) (byte address)
	FrameAddr  // Dst = frame base + Imm (byte offset of a local array)
	Load       // Dst = mem[A + Imm]
	Store      // mem[A + Imm] = B

	Call // Dst = Sym(Args...); Dst may be NoReg
	Out  // emit A to the output stream

	// Terminators.
	Br  // if A != 0 goto Succs[0] else Succs[1]
	Jmp // goto Succs[0]
	Ret // return A (or NoReg)
	// Switch is a dense jump table: for index A, goto Succs[A-Imm] when
	// Imm <= A < Imm+len(Succs)-1, else goto Succs[len(Succs)-1] (the final
	// successor is the default).
	Switch

	numOpcs
)

var opcNames = [numOpcs]string{
	Nop: "nop", Const: "const", Copy: "copy",
	Add: "add", Sub: "sub", Mul: "mul", Div: "div", Rem: "rem",
	And: "and", Or: "or", Xor: "xor", Shl: "shl", Shr: "shr",
	CmpEQ: "cmpeq", CmpNE: "cmpne", CmpLT: "cmplt", CmpLE: "cmple",
	CmpGT: "cmpgt", CmpGE: "cmpge",
	Neg: "neg", Not: "not", CmovNZ: "cmovnz",
	GlobalAddr: "gaddr", FrameAddr: "faddr", Load: "load", Store: "store",
	Call: "call", Out: "out",
	Br: "br", Jmp: "jmp", Ret: "ret", Switch: "switch",
}

func (o Opc) String() string {
	if o >= numOpcs {
		return fmt.Sprintf("opc(%d)", uint8(o))
	}
	return opcNames[o]
}

// IsTerm reports whether the opcode terminates a basic block.
func (o Opc) IsTerm() bool { return o == Br || o == Jmp || o == Ret || o == Switch }

// HasDst reports whether the instruction writes Dst.
func (o Opc) HasDst() bool {
	switch o {
	case Const, Copy, Add, Sub, Mul, Div, Rem, And, Or, Xor, Shl, Shr,
		CmpEQ, CmpNE, CmpLT, CmpLE, CmpGT, CmpGE, Neg, Not, CmovNZ,
		GlobalAddr, FrameAddr, Load:
		return true
	case Call:
		return true // Dst may still be NoReg for a void-context call
	}
	return false
}

// IsPure reports whether the instruction has no side effects and can be
// removed when its result is dead.
func (o Opc) IsPure() bool {
	switch o {
	case Const, Copy, Add, Sub, Mul, Div, Rem, And, Or, Xor, Shl, Shr,
		CmpEQ, CmpNE, CmpLT, CmpLE, CmpGT, CmpGE, Neg, Not, CmovNZ,
		GlobalAddr, FrameAddr, Load, Nop:
		// Loads are treated as pure for DCE: MiniC has no volatile
		// memory and no traps on bad addresses at the IR level.
		return true
	}
	return false
}

// Instr is a three-address instruction.
type Instr struct {
	Op   Opc
	Dst  Reg
	A, B Reg
	Imm  int64
	Sym  string // global symbol or callee name
	Args []Reg  // call arguments
}

// Uses returns the registers the instruction reads.
func (in *Instr) Uses() []Reg {
	var u []Reg
	add := func(r Reg) {
		if r != NoReg {
			u = append(u, r)
		}
	}
	switch in.Op {
	case Const, GlobalAddr, FrameAddr, Nop, Jmp:
	case CmovNZ:
		add(in.Dst) // the prior value survives when the condition is zero
		add(in.A)
		add(in.B)
	case Copy, Neg, Not, Load, Out:
		add(in.A)
	case Store:
		add(in.A)
		add(in.B)
	case Call:
		for _, a := range in.Args {
			add(a)
		}
	case Br, Switch:
		add(in.A)
	case Ret:
		add(in.A)
	default: // binary ops
		add(in.A)
		add(in.B)
	}
	return u
}

// Def returns the register the instruction writes, or NoReg.
func (in *Instr) Def() Reg {
	if in.Op.HasDst() {
		return in.Dst
	}
	return NoReg
}

func (in *Instr) String() string {
	var sb strings.Builder
	if d := in.Def(); d != NoReg {
		fmt.Fprintf(&sb, "%s = ", d)
	}
	sb.WriteString(in.Op.String())
	switch in.Op {
	case Const:
		fmt.Fprintf(&sb, " %d", in.Imm)
	case GlobalAddr:
		fmt.Fprintf(&sb, " %s", in.Sym)
	case FrameAddr:
		fmt.Fprintf(&sb, " +%d", in.Imm)
	case Load:
		fmt.Fprintf(&sb, " [%s+%d]", in.A, in.Imm)
	case Store:
		fmt.Fprintf(&sb, " [%s+%d] = %s", in.A, in.Imm, in.B)
	case Call:
		fmt.Fprintf(&sb, " %s(", in.Sym)
		for i, a := range in.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(a.String())
		}
		sb.WriteString(")")
	default:
		if in.A != NoReg {
			fmt.Fprintf(&sb, " %s", in.A)
		}
		if in.B != NoReg {
			fmt.Fprintf(&sb, ", %s", in.B)
		}
	}
	return sb.String()
}

// Block is an IR basic block.
type Block struct {
	ID     int
	Instrs []Instr
	Succs  []*Block
	Preds  []*Block
}

// Term returns the block's terminator, or nil if the block has none yet.
func (b *Block) Term() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	last := &b.Instrs[len(b.Instrs)-1]
	if last.Op.IsTerm() {
		return last
	}
	return nil
}

func (b *Block) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "b%d:", b.ID)
	if len(b.Succs) > 0 {
		sb.WriteString(" ->")
		for _, s := range b.Succs {
			fmt.Fprintf(&sb, " b%d", s.ID)
		}
	}
	sb.WriteByte('\n')
	for i := range b.Instrs {
		fmt.Fprintf(&sb, "  %s\n", b.Instrs[i].String())
	}
	return sb.String()
}

// Global is a module-level variable (scalar or array of 64-bit words).
type Global struct {
	Name  string
	Words int32 // 1 for a scalar
}

// Func is an IR function.
type Func struct {
	Name    string
	Params  []Reg // virtual registers holding incoming arguments
	Entry   *Block
	Blocks  []*Block
	NextReg Reg
	Library bool
	// FrameWords is the number of 8-byte frame words reserved for local
	// arrays (FrameAddr offsets point into this area). Spill slots are
	// appended by register allocation.
	FrameWords int32
}

// NewReg allocates a fresh virtual register.
func (f *Func) NewReg() Reg {
	r := f.NextReg
	f.NextReg++
	return r
}

// NewBlock allocates and appends a new basic block.
func (f *Func) NewBlock() *Block {
	b := &Block{ID: len(f.Blocks)}
	f.Blocks = append(f.Blocks, b)
	return b
}

// Renumber reassigns dense block IDs after block removal.
func (f *Func) Renumber() {
	for i, b := range f.Blocks {
		b.ID = i
	}
}

// ComputePreds recomputes every block's predecessor list from Succs.
func (f *Func) ComputePreds() {
	for _, b := range f.Blocks {
		b.Preds = b.Preds[:0]
	}
	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			s.Preds = append(s.Preds, b)
		}
	}
}

func (f *Func) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s(", f.Name)
	for i, p := range f.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(p.String())
	}
	sb.WriteString(")\n")
	for _, b := range f.Blocks {
		sb.WriteString(b.String())
	}
	return sb.String()
}

// Module is a compiled translation unit.
type Module struct {
	Name    string
	Globals []Global
	Funcs   []*Func
}

// Func returns the named function, or nil.
func (m *Module) Func(name string) *Func {
	for _, f := range m.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Global returns the named global, or nil.
func (m *Module) Global(name string) *Global {
	for i := range m.Globals {
		if m.Globals[i].Name == name {
			return &m.Globals[i]
		}
	}
	return nil
}

// Validate checks IR structural invariants.
func (m *Module) Validate() error {
	for _, f := range m.Funcs {
		if f.Entry == nil {
			return fmt.Errorf("ir: func %s has no entry", f.Name)
		}
		seen := map[*Block]bool{}
		for i, b := range f.Blocks {
			if b.ID != i {
				return fmt.Errorf("ir: func %s block at %d has ID %d", f.Name, i, b.ID)
			}
			if seen[b] {
				return fmt.Errorf("ir: func %s block b%d appears twice", f.Name, b.ID)
			}
			seen[b] = true
		}
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.Op.IsTerm() && i != len(b.Instrs)-1 {
					return fmt.Errorf("ir: func %s b%d has terminator mid-block", f.Name, b.ID)
				}
			}
			t := b.Term()
			switch {
			case t == nil:
				return fmt.Errorf("ir: func %s b%d has no terminator", f.Name, b.ID)
			case t.Op == Br && len(b.Succs) != 2:
				return fmt.Errorf("ir: func %s b%d br with %d succs", f.Name, b.ID, len(b.Succs))
			case t.Op == Jmp && len(b.Succs) != 1:
				return fmt.Errorf("ir: func %s b%d jmp with %d succs", f.Name, b.ID, len(b.Succs))
			case t.Op == Ret && len(b.Succs) != 0:
				return fmt.Errorf("ir: func %s b%d ret with %d succs", f.Name, b.ID, len(b.Succs))
			case t.Op == Switch && len(b.Succs) < 2:
				return fmt.Errorf("ir: func %s b%d switch with %d succs", f.Name, b.ID, len(b.Succs))
			}
			for _, s := range b.Succs {
				if !seen[s] {
					return fmt.Errorf("ir: func %s b%d successor not in func", f.Name, b.ID)
				}
			}
		}
	}
	return nil
}
