module bsisa

go 1.24
