// Package bsisa's root benchmarks regenerate each of the paper's tables and
// figures under `go test -bench` (one target per table/figure, per
// DESIGN.md's experiment index), plus component microbenchmarks for the
// compiler, enlarger, emulator and timing model. Benchmarks run the harness
// at a reduced scale so `go test -bench=. -benchmem` stays tractable; the
// bsbench command reproduces the full-scale numbers.
package main

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"bsisa/internal/bpred"
	"bsisa/internal/compile"
	"bsisa/internal/core"
	"bsisa/internal/emu"
	"bsisa/internal/harness"
	"bsisa/internal/isa"
	"bsisa/internal/uarch"
	"bsisa/internal/workload"
)

const benchScale = 0.05

var (
	benchOnce sync.Once
	benchH    *harness.Harness
	benchErr  error
)

func benchHarness(b *testing.B) *harness.Harness {
	b.Helper()
	benchOnce.Do(func() {
		benchH, benchErr = harness.New(harness.Options{Scale: benchScale})
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchH
}

// BenchmarkTable1 regenerates the instruction class/latency table.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tbl := harness.Table1(); len(tbl.Rows) != 8 {
			b.Fatal("table 1 wrong shape")
		}
	}
}

// BenchmarkTable2 regenerates the benchmark inventory with measured dynamic
// operation counts.
func BenchmarkTable2(b *testing.B) {
	h := benchHarness(b)
	for i := 0; i < b.N; i++ {
		if _, err := h.Table2(); err != nil {
			b.Fatal(err)
		}
	}
}

func benchFigure(b *testing.B, f func(*harness.Harness) error) {
	h := benchHarness(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Memoized results would make iterations after the first free; clear
		// them so ns/op reflects real timing simulation. Recorded traces are
		// config-independent inputs and survive the clear, so iterations
		// measure the replay path the harness actually uses.
		h.ClearResults()
		if err := f(h); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3 regenerates the headline cycles comparison (real
// predictor, large icache).
func BenchmarkFigure3(b *testing.B) {
	benchFigure(b, func(h *harness.Harness) error { _, err := h.Figure3(); return err })
}

// BenchmarkFigure4 regenerates the perfect-branch-prediction comparison.
func BenchmarkFigure4(b *testing.B) {
	benchFigure(b, func(h *harness.Harness) error { _, err := h.Figure4(); return err })
}

// BenchmarkFigure5 regenerates the retired-block-size comparison.
func BenchmarkFigure5(b *testing.B) {
	benchFigure(b, func(h *harness.Harness) error { _, err := h.Figure5(); return err })
}

// BenchmarkFigure6 regenerates the conventional-ISA icache sensitivity sweep.
func BenchmarkFigure6(b *testing.B) {
	benchFigure(b, func(h *harness.Harness) error { _, err := h.Figure6(); return err })
}

// BenchmarkFigure7 regenerates the block-structured icache sensitivity sweep.
func BenchmarkFigure7(b *testing.B) {
	benchFigure(b, func(h *harness.Harness) error { _, err := h.Figure7(); return err })
}

// BenchmarkAblateBlockSize sweeps the atomic block size cap (ablation A1).
func BenchmarkAblateBlockSize(b *testing.B) {
	benchFigure(b, func(h *harness.Harness) error { _, err := h.AblateBlockSize(); return err })
}

// BenchmarkAblateFaults sweeps the per-block fault budget (ablation A2).
func BenchmarkAblateFaults(b *testing.B) {
	benchFigure(b, func(h *harness.Harness) error { _, err := h.AblateFaults(); return err })
}

// BenchmarkAblateSuperblock compares enlargement against superblock
// formation (ablation A3).
func BenchmarkAblateSuperblock(b *testing.B) {
	benchFigure(b, func(h *harness.Harness) error { _, err := h.AblateSuperblock(); return err })
}

// BenchmarkAblateHistory sweeps predictor history length (ablation A4).
func BenchmarkAblateHistory(b *testing.B) {
	benchFigure(b, func(h *harness.Harness) error { _, err := h.AblateHistory(); return err })
}

// BenchmarkAblateMinBias evaluates the §6 bias-threshold heuristic
// (ablation A5).
func BenchmarkAblateMinBias(b *testing.B) {
	benchFigure(b, func(h *harness.Harness) error { _, err := h.AblateMinBias(); return err })
}

// ---- component microbenchmarks ----

func liSource() string {
	p, _ := workload.ProfileByName("li", 0.05)
	src, err := workload.Source(p)
	if err != nil {
		panic(err)
	}
	return src
}

// BenchmarkCompileConventional measures full compilation throughput for the
// conventional backend.
func BenchmarkCompileConventional(b *testing.B) {
	src := liSource()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := compile.Compile(src, "li", compile.DefaultOptions(isa.Conventional)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompileBlockStructured measures the block-structured backend.
func BenchmarkCompileBlockStructured(b *testing.B) {
	src := liSource()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := compile.Compile(src, "li", compile.DefaultOptions(isa.BlockStructured)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnlarge measures the block enlargement pass itself.
func BenchmarkEnlarge(b *testing.B) {
	src := liSource()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		prog, err := compile.Compile(src, "li", compile.DefaultOptions(isa.BlockStructured))
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := core.Enlarge(prog, core.Params{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEmulator measures functional emulation throughput (ops/sec via
// b.ReportMetric).
func BenchmarkEmulator(b *testing.B) {
	prog, err := compile.Compile(liSource(), "li", compile.DefaultOptions(isa.Conventional))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var ops int64
	for i := 0; i < b.N; i++ {
		res, err := emu.New(prog, emu.Config{}).Run(nil)
		if err != nil {
			b.Fatal(err)
		}
		ops += res.Stats.Ops
	}
	b.ReportMetric(float64(ops)/b.Elapsed().Seconds(), "ops/s")
}

// BenchmarkTraceRecord measures committed-block trace capture: one
// functional emulation plus the flat-slice event encoding.
func BenchmarkTraceRecord(b *testing.B) {
	prog, err := compile.Compile(liSource(), "li", compile.DefaultOptions(isa.Conventional))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var bytes int64
	for i := 0; i < b.N; i++ {
		tr, err := emu.Record(prog, emu.Config{})
		if err != nil {
			b.Fatal(err)
		}
		bytes += tr.Footprint()
	}
	b.ReportMetric(float64(bytes)/float64(b.N), "trace-bytes")
}

// BenchmarkTraceReplay measures one timing simulation driven from a recorded
// trace — the marginal cost of each extra configuration under
// SimulateMany, with no re-emulation.
func BenchmarkTraceReplay(b *testing.B) {
	prog, err := compile.Compile(liSource(), "li", compile.DefaultOptions(isa.Conventional))
	if err != nil {
		b.Fatal(err)
	}
	tr, err := emu.Record(prog, emu.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var ops int64
	for i := 0; i < b.N; i++ {
		res, err := uarch.ReplayTrace(tr, uarch.Config{})
		if err != nil {
			b.Fatal(err)
		}
		ops += res.Ops
	}
	b.ReportMetric(float64(ops)/b.Elapsed().Seconds(), "ops/s")
}

// sweepBenchGrid is a dense icache sensitivity sweep at reference geometry:
// a perfect-icache baseline plus every power-of-two size from 1KB to 64KB
// (the Figure 6/7 sizes and their surrounding octaves), all sharing one
// recorded trace. Dense grids are the fused engine's natural workload — the
// stack-distance profiler prices every extra power-of-two size at one cheap
// timing lane.
func sweepBenchGrid() []uarch.Config {
	cfgs := []uarch.Config{{}}
	for sz := 1024; sz <= 65536; sz *= 2 {
		var cfg uarch.Config
		cfg.ICache.SizeBytes = sz
		cfgs = append(cfgs, cfg)
	}
	return cfgs
}

func sweepBenchTrace(b *testing.B) *emu.Trace {
	b.Helper()
	prog, err := compile.Compile(liSource(), "li", compile.DefaultOptions(isa.Conventional))
	if err != nil {
		b.Fatal(err)
	}
	tr, err := emu.Record(prog, emu.Config{})
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

// BenchmarkICacheSweepLegacy times the pre-fusion icache sweep: one full
// trace replay per configuration via SimulateMany.
func BenchmarkICacheSweepLegacy(b *testing.B) {
	tr := sweepBenchTrace(b)
	cfgs := sweepBenchGrid()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := uarch.SimulateMany(tr, cfgs, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkICacheSweepFused times the unified engine on the identical grid:
// one enriched decode pass shared by all sweep points, then per-config
// timing lanes.
func BenchmarkICacheSweepFused(b *testing.B) {
	tr := sweepBenchTrace(b)
	cfgs := sweepBenchGrid()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := uarch.Sweep(tr, cfgs, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// predBenchGrid is the 8-point predictor history sweep from the predsweep
// experiment: one configuration per history length over the reference
// machine with a 32KB icache, all sharing one recorded trace.
func predBenchGrid() []uarch.Config {
	var cfgs []uarch.Config
	for _, hb := range []int{1, 2, 4, 6, 8, 10, 12, 16} {
		var cfg uarch.Config
		cfg.ICache.SizeBytes = 32 * 1024
		cfg.Predictor.HistoryBits = hb
		cfgs = append(cfgs, cfg)
	}
	return cfgs
}

// BenchmarkPredSweepLegacy times the pre-fusion predictor sweep: one full
// trace replay per configuration via SimulateMany.
func BenchmarkPredSweepLegacy(b *testing.B) {
	tr := sweepBenchTrace(b)
	cfgs := predBenchGrid()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := uarch.SimulateMany(tr, cfgs, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredSweepFused times the unified engine on the identical
// predictor grid: one enriched decode pass with a predictor bank evaluating
// every history length per control event, then per-config timing lanes.
func BenchmarkPredSweepFused(b *testing.B) {
	tr := sweepBenchTrace(b)
	cfgs := predBenchGrid()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := uarch.Sweep(tr, cfgs, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// xsweepBenchGrid is the acceptance grid for the unified engine: four
// branch-history lengths crossed with four icache sizes, sixteen lanes off
// one enrichment replay.
func xsweepBenchGrid() []uarch.Config {
	var cfgs []uarch.Config
	for _, hb := range []int{4, 8, 12, 16} {
		for sz := 4096; sz <= 32768; sz *= 2 {
			var cfg uarch.Config
			cfg.ICache.SizeBytes = sz
			cfg.Predictor.HistoryBits = hb
			cfgs = append(cfgs, cfg)
		}
	}
	return cfgs
}

// BenchmarkXSweepLegacy times the 4x4 history x icache cross product the
// pre-fusion way: one full trace replay per grid point.
func BenchmarkXSweepLegacy(b *testing.B) {
	tr := sweepBenchTrace(b)
	cfgs := xsweepBenchGrid()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := uarch.SimulateMany(tr, cfgs, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkXSweepFused times the unified multi-axis engine on the identical
// cross product: one enrichment replay feeding all sixteen lanes. -benchmem
// also pins the per-call allocation profile — lane scratch comes from the
// geometry-keyed pool, so steady-state calls must not scale allocations
// with trace length.
func BenchmarkXSweepFused(b *testing.B) {
	tr := sweepBenchTrace(b)
	cfgs := xsweepBenchGrid()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := uarch.Sweep(tr, cfgs, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictorBank measures the shared-BHR predictor bank's per-event
// cost on the hot path — eight predictor variants stepped per committed
// control block. The bank must be allocation-free after construction
// (TestBankStepAllocs pins this to zero; -benchmem shows it here).
func BenchmarkPredictorBank(b *testing.B) {
	prog, err := compile.Compile(liSource(), "li", compile.DefaultOptions(isa.BlockStructured))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := core.Enlarge(prog, core.Params{}); err != nil {
		b.Fatal(err)
	}
	tr, err := emu.Record(prog, emu.Config{})
	if err != nil {
		b.Fatal(err)
	}
	pcfgs := make([]bpred.Config, 0, 8)
	for _, hb := range []int{1, 2, 4, 6, 8, 10, 12, 16} {
		pcfgs = append(pcfgs, bpred.Config{HistoryBits: hb})
	}
	bank := bpred.NewBank(isa.BlockStructured, pcfgs)
	out := make([]isa.BlockID, bank.Len())
	b.ReportAllocs()
	b.ResetTimer()
	var events int64
	for i := 0; i < b.N; i++ {
		err := tr.Replay(func(ev *emu.BlockEvent) error {
			if ev.Next != isa.NoBlock {
				bank.Step(ev.Block, ev.Next, ev.Taken, ev.SuccIdx, out)
				events++
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkTimingSim measures the full emulate+time pipeline.
func BenchmarkTimingSim(b *testing.B) {
	prog, err := compile.Compile(liSource(), "li", compile.DefaultOptions(isa.Conventional))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var ops int64
	for i := 0; i < b.N; i++ {
		res, _, err := uarch.RunProgram(prog, uarch.Config{}, emu.Config{})
		if err != nil {
			b.Fatal(err)
		}
		ops += res.Ops
	}
	b.ReportMetric(float64(ops)/b.Elapsed().Seconds(), "ops/s")
}

// mappedLiTrace writes the li trace in v3 form and maps it back, the load
// path a bsimd store hit takes.
func mappedLiTrace(tb testing.TB) *emu.TraceMapping {
	tb.Helper()
	prog, err := compile.Compile(liSource(), "li", compile.DefaultOptions(isa.Conventional))
	if err != nil {
		tb.Fatal(err)
	}
	tr, err := emu.Record(prog, emu.Config{})
	if err != nil {
		tb.Fatal(err)
	}
	path := filepath.Join(tb.TempDir(), "li.bstr")
	if err := os.WriteFile(path, tr.EncodeBytes(nil), 0o644); err != nil {
		tb.Fatal(err)
	}
	m, err := emu.OpenTraceFile(path, prog)
	if err != nil {
		tb.Fatal(err)
	}
	return m
}

// TestMappedReplayZeroAlloc pins the zero-decode contract's second half:
// once a v3 trace is mapped, walking every event — the loop under every
// sweep and replay engine — allocates nothing. The event struct itself is
// hoisted outside the measured region by warmup; what this guards is any
// per-event or per-chunk allocation creeping into the mapped columns' path.
func TestMappedReplayZeroAlloc(t *testing.T) {
	m := mappedLiTrace(t)
	defer m.Release()
	if !m.ZeroCopy() {
		t.Skip("platform mapped the file into the heap; zero-copy contract does not apply")
	}
	tr := m.Trace()
	var sink int64
	handler := func(ev *emu.BlockEvent) error {
		sink += int64(ev.SuccIdx) + int64(len(ev.MemAddrs))
		return nil
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := tr.Replay(handler); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("mapped replay allocated %.1f objects per full walk (%d events), want 0",
			allocs, tr.NumEvents())
	}
	_ = sink
}

// BenchmarkTraceLoadDecode measures the legacy store-hit path: decoding the
// varint trace form into freshly allocated heap columns.
func BenchmarkTraceLoadDecode(b *testing.B) {
	prog, err := compile.Compile(liSource(), "li", compile.DefaultOptions(isa.Conventional))
	if err != nil {
		b.Fatal(err)
	}
	tr, err := emu.Record(prog, emu.Config{})
	if err != nil {
		b.Fatal(err)
	}
	blob := tr.EncodeBytesLegacy(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := emu.DecodeTrace(blob, prog); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceLoadMmap measures the v3 store-hit path: mapping the file
// and aliasing its fixed-stride columns in place (checksum validation is the
// only per-byte work).
func BenchmarkTraceLoadMmap(b *testing.B) {
	prog, err := compile.Compile(liSource(), "li", compile.DefaultOptions(isa.Conventional))
	if err != nil {
		b.Fatal(err)
	}
	tr, err := emu.Record(prog, emu.Config{})
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "li.bstr")
	if err := os.WriteFile(path, tr.EncodeBytes(nil), 0o644); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := emu.OpenTraceFile(path, prog)
		if err != nil {
			b.Fatal(err)
		}
		m.Release()
	}
}
