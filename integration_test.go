package main

// End-to-end integration tests of the command-line tools: build the real
// binaries and drive the compile → enlarge → simulate → disassemble flow a
// user would run.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildTool(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("build %s: %v\n%s", name, err, out)
	}
	return bin
}

func TestToolchainEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	bsc := buildTool(t, dir, "bsc")
	bsim := buildTool(t, dir, "bsim")
	bsdis := buildTool(t, dir, "bsdis")

	src := filepath.Join(dir, "prog.mc")
	if err := os.WriteFile(src, []byte(`
var acc;
func twice(x) { return x * 2; }
func main() {
	var i;
	for (i = 0; i < 10; i = i + 1) {
		if (i % 2 == 0) { acc = acc + twice(i); } else { acc = acc - 1; }
	}
	out(acc);
}
`), 0o644); err != nil {
		t.Fatal(err)
	}

	// Compile both ISAs; enlarge the block-structured one.
	convObj := filepath.Join(dir, "conv.bso")
	bsaObj := filepath.Join(dir, "bsa.bso")
	for _, args := range [][]string{
		{"-target", "conv", "-o", convObj, src},
		{"-target", "bsa", "-enlarge", "-o", bsaObj, src},
	} {
		out, err := exec.Command(bsc, args...).CombinedOutput()
		if err != nil {
			t.Fatalf("bsc %v: %v\n%s", args, err, out)
		}
	}

	// Both must produce the same program output (acc = 0+0-1+4-1+8-1+12-1+16-1 = 35).
	var results []string
	for _, obj := range []string{convObj, bsaObj} {
		out, err := exec.Command(bsim, "-timing", "-icache", "4096", obj).CombinedOutput()
		if err != nil {
			t.Fatalf("bsim %s: %v\n%s", obj, err, out)
		}
		text := string(out)
		if !strings.Contains(text, "out: 35") {
			t.Fatalf("bsim %s: expected 'out: 35' in\n%s", obj, text)
		}
		for _, want := range []string{"cycles:", "IPC:", "icache:", "mispredicts:"} {
			if !strings.Contains(text, want) {
				t.Errorf("bsim output missing %q", want)
			}
		}
		results = append(results, text)
	}
	if !strings.Contains(results[0], "conventional") || !strings.Contains(results[1], "block-structured") {
		t.Error("bsim did not report ISA kinds")
	}

	// Disassembly of the enlarged object mentions traps and faults.
	out, err := exec.Command(bsdis, bsaObj).CombinedOutput()
	if err != nil {
		t.Fatalf("bsdis: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "trap") {
		t.Error("disassembly has no traps")
	}
	if !strings.Contains(string(out), "func main") {
		t.Error("disassembly has no main")
	}
}

func TestBsgenListsBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	bsgen := buildTool(t, dir, "bsgen")
	out, err := exec.Command(bsgen, "-list").CombinedOutput()
	if err != nil {
		t.Fatalf("bsgen -list: %v\n%s", err, out)
	}
	for _, name := range []string{"compress", "gcc", "go", "ijpeg", "li", "m88ksim", "perl", "vortex"} {
		if !strings.Contains(string(out), name) {
			t.Errorf("bsgen -list missing %s", name)
		}
	}
	src, err := exec.Command(bsgen, "-scale", "0.01", "li").CombinedOutput()
	if err != nil {
		t.Fatalf("bsgen li: %v", err)
	}
	if !strings.Contains(string(src), "func main()") {
		t.Error("bsgen li did not emit a program")
	}
}
