// ICache study: reproduce the paper's go anomaly — block enlargement
// duplicates code, and on big-code programs with unbiased branches the
// enlarged executable stops fitting in the instruction cache, giving back
// (and sometimes more than) the fetch-rate win. Sweep icache sizes for the
// "go" profile and print Figure 6/7-style relative slowdowns side by side.
//
//	go run ./examples/icachestudy
package main

import (
	"fmt"
	"log"

	"bsisa/internal/cache"
	"bsisa/internal/compile"
	"bsisa/internal/core"
	"bsisa/internal/emu"
	"bsisa/internal/isa"
	"bsisa/internal/stats"
	"bsisa/internal/uarch"
	"bsisa/internal/workload"
)

func main() {
	prof, _ := workload.ProfileByName("go", 0.1)
	src, err := workload.Source(prof)
	if err != nil {
		log.Fatal(err)
	}

	conv, err := compile.Compile(src, prof.Name, compile.DefaultOptions(isa.Conventional))
	if err != nil {
		log.Fatal(err)
	}
	bsa, err := compile.Compile(src, prof.Name, compile.DefaultOptions(isa.BlockStructured))
	if err != nil {
		log.Fatal(err)
	}
	est, err := core.Enlarge(bsa, core.Params{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: synthetic %s profile (big code, unbiased branches)\n", prof.Name)
	fmt.Printf("static code: conventional %d bytes, block-structured %d bytes (%.2fx duplication)\n\n",
		conv.CodeBytes(), bsa.CodeBytes(), est.CodeGrowth())

	base := map[isa.Kind]int64{}
	for _, prog := range []*isa.Program{conv, bsa} {
		res, _, err := uarch.RunProgram(prog, uarch.Config{}, emu.Config{})
		if err != nil {
			log.Fatal(err)
		}
		base[prog.Kind] = res.Cycles
	}
	fmt.Printf("perfect icache: conventional %d cycles, block-structured %d cycles (%+.1f%%)\n\n",
		base[isa.Conventional], base[isa.BlockStructured],
		100*(1-float64(base[isa.BlockStructured])/float64(base[isa.Conventional])))

	fmt.Printf("%-8s %26s %26s\n", "icache", "conventional slowdown", "block-structured slowdown")
	for _, kb := range []int{4, 8, 16, 32, 64} {
		var rel [2]float64
		var miss [2]float64
		for i, prog := range []*isa.Program{conv, bsa} {
			cfg := uarch.Config{ICache: cache.Config{SizeBytes: kb * 1024, Ways: 4}}
			res, _, err := uarch.RunProgram(prog, cfg, emu.Config{})
			if err != nil {
				log.Fatal(err)
			}
			rel[i] = float64(res.Cycles-base[prog.Kind]) / float64(base[prog.Kind])
			miss[i] = res.ICache.MissRate()
		}
		fmt.Printf("%-8s %8.1f%% %s %8.1f%% %s\n",
			fmt.Sprintf("%dKB", kb),
			100*rel[0], stats.Bar(rel[0], 16),
			100*rel[1], stats.Bar(rel[1], 16))
	}
	fmt.Println("\nThe enlarged executable needs roughly twice the icache to reach the")
	fmt.Println("same miss rate; below that point duplication costs more than the")
	fmt.Println("fetch-rate optimization gains (the paper's go result).")
}
