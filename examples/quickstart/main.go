// Quickstart: compile one MiniC program for both ISAs, apply the block
// enlargement optimization to the block-structured executable, run all of
// them functionally (verifying identical output), and compare their timing
// on the paper's 16-wide processor.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"bsisa/internal/cache"
	"bsisa/internal/compile"
	"bsisa/internal/core"
	"bsisa/internal/emu"
	"bsisa/internal/isa"
	"bsisa/internal/uarch"
)

const program = `
var histogram[64];

func classify(x) {
	if (x % 3 == 0) {
		if (x % 2 == 0) { return 0; }
		return 1;
	}
	if (x % 2 == 0) { return 2; }
	return 3;
}

func main() {
	var i;
	var s = 12345;
	for (i = 0; i < 20000; i = i + 1) {
		s = (s * 48271 + 11) & 2147483647;
		var bucket = classify(s & 1023) * 16 + (s & 15);
		histogram[bucket] = histogram[bucket] + 1;
	}
	var mx = 0;
	for (i = 0; i < 64; i = i + 1) {
		if (histogram[i] > mx) { mx = histogram[i]; }
	}
	out(mx);
}
`

func main() {
	// 1. Compile for the conventional load/store ISA.
	conv, err := compile.Compile(program, "quickstart", compile.DefaultOptions(isa.Conventional))
	if err != nil {
		log.Fatal(err)
	}

	// 2. Compile for the block-structured ISA and enlarge its atomic blocks
	//    (the paper's core optimization: merge blocks with their control
	//    flow successors, converting traps to faults).
	bsa, err := compile.Compile(program, "quickstart", compile.DefaultOptions(isa.BlockStructured))
	if err != nil {
		log.Fatal(err)
	}
	est, err := core.Enlarge(bsa, core.Params{}) // paper defaults: 16 ops, 2 faults
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("enlargement: %d conditional forks, %d straight-line merges, static code %.2fx\n\n",
		est.Forks, est.UncondMerges, est.CodeGrowth())

	// 3. Run both functionally and verify the architectures agree.
	resConv, err := emu.New(conv, emu.Config{}).Run(nil)
	if err != nil {
		log.Fatal(err)
	}
	resBSA, err := emu.New(bsa, emu.Config{}).Run(nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("conventional output:     %v\n", resConv.Output)
	fmt.Printf("block-structured output: %v\n", resBSA.Output)
	if fmt.Sprint(resConv.Output) != fmt.Sprint(resBSA.Output) {
		log.Fatal("ISAs disagree!")
	}

	// 4. Time both on the paper's processor (16-wide, 32 blocks in flight,
	//    8KB icache, two-level adaptive prediction).
	cfg := uarch.Config{ICache: cache.Config{SizeBytes: 8 * 1024, Ways: 4}}
	tConv, _, err := uarch.RunProgram(conv, cfg, emu.Config{})
	if err != nil {
		log.Fatal(err)
	}
	tBSA, _, err := uarch.RunProgram(bsa, cfg, emu.Config{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-22s %12s %12s\n", "", "conventional", "block-struct")
	fmt.Printf("%-22s %12d %12d\n", "cycles", tConv.Cycles, tBSA.Cycles)
	fmt.Printf("%-22s %12.3f %12.3f\n", "IPC", tConv.IPC(), tBSA.IPC())
	fmt.Printf("%-22s %12.2f %12.2f\n", "avg retired block", tConv.AvgBlockSize(), tBSA.AvgBlockSize())
	fmt.Printf("%-22s %12d %12d\n", "mispredicts", tConv.Mispredicts(), tBSA.Mispredicts())
	fmt.Printf("\nblock-structured speedup: %.1f%%\n",
		100*(1-float64(tBSA.Cycles)/float64(tConv.Cycles)))
}
