// Fetchrate: reproduce the paper's central mechanism on one workload — the
// processor fetches one block per cycle, so the average atomic block size IS
// the fetch bandwidth. Sweep the block enlargement limits (max operations
// and max faults per block) and watch retired block size and IPC move
// together, exactly the Figure 5 → Figure 3 causal chain.
//
//	go run ./examples/fetchrate
package main

import (
	"fmt"
	"log"

	"bsisa/internal/compile"
	"bsisa/internal/core"
	"bsisa/internal/emu"
	"bsisa/internal/isa"
	"bsisa/internal/uarch"
	"bsisa/internal/workload"
)

func main() {
	// The m88ksim profile: highly predictable branches, the paper's best
	// case for enlargement.
	prof, _ := workload.ProfileByName("m88ksim", 0.1)
	src, err := workload.Source(prof)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: synthetic %s profile\n\n", prof.Name)
	fmt.Printf("%-28s %10s %10s %10s %10s\n",
		"configuration", "blocksize", "cycles", "IPC", "code x")

	conv, err := compile.Compile(src, prof.Name, compile.DefaultOptions(isa.Conventional))
	if err != nil {
		log.Fatal(err)
	}
	show("conventional ISA", conv, 1.0)

	type cfg struct {
		name   string
		params core.Params
	}
	for _, c := range []cfg{
		{"bsa: no enlargement", core.Params{MaxOps: 1, MaxFaults: -1}},
		{"bsa: merges only (0 faults)", core.Params{MaxFaults: -1}},
		{"bsa: 1 fault, 16 ops", core.Params{MaxFaults: 1}},
		{"bsa: 2 faults, 16 ops (paper)", core.Params{}},
		{"bsa: 2 faults, 32 ops", core.Params{MaxOps: 32}},
	} {
		prog, err := compile.Compile(src, prof.Name, compile.DefaultOptions(isa.BlockStructured))
		if err != nil {
			log.Fatal(err)
		}
		st, err := core.Enlarge(prog, c.params)
		if err != nil {
			log.Fatal(err)
		}
		show(c.name, prog, st.CodeGrowth())
	}
}

func show(name string, prog *isa.Program, growth float64) {
	res, _, err := uarch.RunProgram(prog, uarch.Config{}, emu.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s %10.2f %10d %10.3f %9.2fx\n",
		name, res.AvgBlockSize(), res.Cycles, res.IPC(), growth)
}
