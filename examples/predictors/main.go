// Predictors: exercise the paper's §4.3 modified Two-Level Adaptive
// predictor directly. An enlarged atomic block can have up to eight
// successors (variant sets); the predictor selects among them with a
// three-bit prediction (one trap counter + two fault counters) and shifts a
// variable number of history bits per block. This example feeds both
// predictors synthetic outcome streams and reports their accuracy, then
// shows end-to-end misprediction behavior on a real workload.
//
//	go run ./examples/predictors
package main

import (
	"fmt"
	"log"
	"math/rand"

	"bsisa/internal/bpred"
	"bsisa/internal/compile"
	"bsisa/internal/core"
	"bsisa/internal/emu"
	"bsisa/internal/isa"
	"bsisa/internal/uarch"
	"bsisa/internal/workload"
)

// syntheticBlock builds a BSA block with two variants per trap direction.
// The successor count must respect the §4.3 BTB invariant (at most
// bpred.MaxTargets variants per block), or the predictor's target selection
// is undefined — fail loudly rather than report garbage accuracies.
func syntheticBlock(addr uint32) *isa.Block {
	b := isa.NewBlock(0)
	b.Addr = addr
	b.Ops = []isa.Op{{Opcode: isa.TRAP, Rs1: 5}}
	b.Succs = []isa.BlockID{10, 11, 20, 21}
	b.TakenCount = 2
	b.RecomputeHistBits()
	if len(b.Succs) > bpred.MaxTargets {
		log.Fatalf("synthetic block has %d successors, beyond the §4.3 limit of %d",
			len(b.Succs), bpred.MaxTargets)
	}
	return b
}

func main() {
	fmt.Println("== part 1: the multi-successor predictor on synthetic streams ==")
	fmt.Println()
	fmt.Printf("%-34s %10s\n", "stream", "accuracy")

	streams := []struct {
		name string
		next func(r *rand.Rand, i int) (isa.BlockID, bool)
	}{
		{"always variant 10 (taken)", func(r *rand.Rand, i int) (isa.BlockID, bool) { return 10, true }},
		{"periodic 10,11,20 pattern", func(r *rand.Rand, i int) (isa.BlockID, bool) {
			switch i % 3 {
			case 0:
				return 10, true
			case 1:
				return 11, true
			default:
				return 20, false
			}
		}},
		{"random uniform over 4 variants", func(r *rand.Rand, i int) (isa.BlockID, bool) {
			v := []isa.BlockID{10, 11, 20, 21}[r.Intn(4)]
			return v, v < 20
		}},
		{"90% variant 10, else random", func(r *rand.Rand, i int) (isa.BlockID, bool) {
			if r.Intn(10) != 0 {
				return 10, true
			}
			v := []isa.BlockID{11, 20, 21}[r.Intn(3)]
			return v, v < 20
		}},
	}
	pcfg := bpred.Config{}
	if err := pcfg.Validate(); err != nil {
		log.Fatal(err)
	}
	for _, s := range streams {
		p := bpred.NewBSA(pcfg)
		b := syntheticBlock(0x4000)
		r := rand.New(rand.NewSource(7))
		correct, total := 0, 0
		for i := 0; i < 20000; i++ {
			actual, taken := s.next(r, i)
			if p.Predict(b) == actual {
				correct++
			}
			total++
			p.Update(b, actual, taken, b.SuccIndex(actual))
		}
		fmt.Printf("%-34s %9.1f%%\n", s.name, 100*float64(correct)/float64(total))
	}

	fmt.Println()
	fmt.Println("== part 2: end-to-end misprediction behavior (perl profile) ==")
	fmt.Println()
	prof, _ := workload.ProfileByName("perl", 0.1)
	src, err := workload.Source(prof)
	if err != nil {
		log.Fatal(err)
	}
	conv, err := compile.Compile(src, prof.Name, compile.DefaultOptions(isa.Conventional))
	if err != nil {
		log.Fatal(err)
	}
	bsa, err := compile.Compile(src, prof.Name, compile.DefaultOptions(isa.BlockStructured))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := core.Enlarge(bsa, core.Params{}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-10s %12s %12s %12s %12s %12s\n",
		"history", "conv mispr", "conv cycles", "bsa trap", "bsa fault", "bsa cycles")
	for _, hist := range []int{2, 4, 8, 12} {
		cfg := uarch.Config{}
		cfg.Predictor.HistoryBits = hist
		if err := cfg.Validate(); err != nil {
			log.Fatal(err)
		}
		rc, _, err := uarch.RunProgram(conv, cfg, emu.Config{})
		if err != nil {
			log.Fatal(err)
		}
		rb, _, err := uarch.RunProgram(bsa, cfg, emu.Config{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10d %12d %12d %12d %12d %12d\n",
			hist, rc.Mispredicts(), rc.Cycles, rb.TrapMispredicts, rb.FaultMispredicts, rb.Cycles)
	}
	fmt.Println("\nFault mispredictions (right trap direction, wrong enlarged variant)")
	fmt.Println("squash the whole atomic block — the committed work re-executes in the")
	fmt.Println("sibling variant, which is why the paper found mispredictions costlier")
	fmt.Println("for block-structured ISAs (its Figure 3 vs Figure 4 gap).")
}
