// Futurework: the paper's §6 proposals, composed. Starting from the plain
// block-structured build, stack up (1) if-conversion (predicated execution
// removes branches and fattens basic blocks), (2) inlining (removes the
// call/return boundaries that stop enlargement — rule 3), and (3)
// profile-guided hot-block layout (reclaims icache space lost to
// duplication), and watch retired block size and cycles respond.
//
//	go run ./examples/futurework
package main

import (
	"fmt"
	"log"

	"bsisa/internal/cache"
	"bsisa/internal/compile"
	"bsisa/internal/core"
	"bsisa/internal/emu"
	"bsisa/internal/isa"
	"bsisa/internal/uarch"
	"bsisa/internal/workload"
)

func main() {
	prof, _ := workload.ProfileByName("m88ksim", 0.1)
	src, err := workload.Source(prof)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: synthetic %s profile (predictable branches)\n\n", prof.Name)
	fmt.Printf("%-40s %10s %10s %8s %8s\n", "configuration", "cycles", "blocksize", "IPC", "code")

	type step struct {
		name      string
		opts      compile.Options
		enlarge   bool
		hotLayout bool
	}
	bsaOpts := compile.DefaultOptions(isa.BlockStructured)
	ifc := bsaOpts
	ifc.IfConvert = true
	ifcInl := ifc
	ifcInl.Inline = true

	steps := []step{
		{"bsa, no enlargement", bsaOpts, false, false},
		{"bsa + enlargement (the paper)", bsaOpts, true, false},
		{"  + if-conversion (S6)", ifc, true, false},
		{"  + inlining (S6)", ifcInl, true, false},
		{"  + hot-block layout (S6)", ifcInl, true, true},
	}
	cfg := uarch.Config{ICache: cache.Config{SizeBytes: 8 * 1024, Ways: 4}}
	for _, st := range steps {
		prog, err := compile.Compile(src, prof.Name, st.opts)
		if err != nil {
			log.Fatal(err)
		}
		if st.enlarge {
			if _, err := core.Enlarge(prog, core.Params{}); err != nil {
				log.Fatal(err)
			}
		}
		if st.hotLayout {
			counts, err := core.CollectBlockCounts(prog, 0)
			if err != nil {
				log.Fatal(err)
			}
			core.ProfileLayout(prog, counts)
		}
		res, _, err := uarch.RunProgram(prog, cfg, emu.Config{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-40s %10d %10.2f %8.3f %7db\n",
			st.name, res.Cycles, res.AvgBlockSize(), res.IPC(), prog.CodeBytes())
	}
	fmt.Println("\nEach S6 proposal attacks a different limiter: branches that fork")
	fmt.Println("variants (if-conversion), call boundaries (inlining), and icache")
	fmt.Println("pressure from duplication (layout).")
}
